"""Tests for the circuit-switched Omega network simulator."""

import pytest

from repro.network.multistage import (
    MultistageNetwork,
    NetworkMessage,
    Workload,
)
from repro.network.netbackoff import ExponentialRetryBackoff, ImmediateRetry


class ListWorkload(Workload):
    """Fixed open-loop message list for tests."""

    def __init__(self, messages):
        self._messages = messages

    def initial_messages(self):
        return list(self._messages)


class TestTopology:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            MultistageNetwork(num_ports=6)

    def test_stage_count(self):
        assert MultistageNetwork(num_ports=8).num_stages == 3
        assert MultistageNetwork(num_ports=64).num_stages == 6

    def test_route_ends_at_destination(self):
        network = MultistageNetwork(num_ports=16)
        for source in range(16):
            for dest in range(16):
                path = network.route_lines(source, dest)
                assert len(path) == 4
                assert path[-1] == (3, dest)

    def test_routes_to_same_dest_share_final_link(self):
        network = MultistageNetwork(num_ports=8)
        a = network.route_lines(0, 5)
        b = network.route_lines(7, 5)
        assert a[-1] == b[-1]

    def test_route_out_of_range(self):
        network = MultistageNetwork(num_ports=8)
        with pytest.raises(ValueError):
            network.route_lines(8, 0)
        with pytest.raises(ValueError):
            network.route_lines(0, -1)

    def test_stage_lines_are_within_range(self):
        network = MultistageNetwork(num_ports=32)
        for source in range(0, 32, 5):
            for dest in range(0, 32, 7):
                for stage, line in network.route_lines(source, dest):
                    assert 0 <= stage < 5
                    assert 0 <= line < 32


class TestSimulation:
    def test_single_message_completes(self):
        network = MultistageNetwork(num_ports=8, hold_time=4)
        msg = NetworkMessage(source=0, dest=5, issue_time=0)
        result = network.run(ListWorkload([msg]), horizon=100)
        assert result.completed == 1
        assert msg.completed_time == 4
        assert msg.latency == 4
        assert result.collisions == 0

    def test_disjoint_paths_no_collision(self):
        network = MultistageNetwork(num_ports=8, hold_time=4)
        messages = [
            NetworkMessage(source=0, dest=0, issue_time=0),
            NetworkMessage(source=4, dest=7, issue_time=0),
        ]
        result = network.run(ListWorkload(messages), horizon=100)
        assert result.completed == 2
        assert result.collisions == 0

    def test_same_destination_collides(self):
        network = MultistageNetwork(num_ports=8, hold_time=4)
        messages = [
            NetworkMessage(source=0, dest=3, issue_time=0),
            NetworkMessage(source=1, dest=3, issue_time=0),
        ]
        result = network.run(ListWorkload(messages), horizon=100)
        assert result.completed == 2
        assert result.collisions >= 1

    def test_collision_depth_reported(self):
        network = MultistageNetwork(num_ports=8, hold_time=4)
        # Sources 0 and 4 map to the same first-stage output line for
        # destination 3 (positions (0<<1)|0 and (8>>... wrap) both 0),
        # so the loser collides at depth 1.
        assert network.route_lines(0, 3)[0] == network.route_lines(4, 3)[0]
        messages = [
            NetworkMessage(source=0, dest=3, issue_time=0),
            NetworkMessage(source=4, dest=3, issue_time=0),
        ]
        result = network.run(ListWorkload(messages), horizon=100)
        assert 1 in result.collision_depths.keys()

    def test_loser_retries_after_hold_expires(self):
        network = MultistageNetwork(num_ports=8, hold_time=3)
        winner = NetworkMessage(source=0, dest=3, issue_time=0)
        loser = NetworkMessage(source=1, dest=3, issue_time=0)
        result = network.run(ListWorkload([winner, loser]), horizon=100)
        assert result.completed == 2
        assert loser.completed_time > winner.completed_time

    def test_backoff_reduces_attempts_under_contention(self):
        def run(policy):
            network = MultistageNetwork(num_ports=16, hold_time=8, backoff=policy)
            messages = [
                NetworkMessage(source=s, dest=0, issue_time=0) for s in range(16)
            ]
            return network.run(ListWorkload(messages), horizon=100_000)

        eager = run(ImmediateRetry())
        patient = run(ExponentialRetryBackoff(base=2, cap=256))
        assert eager.completed == 16
        assert patient.completed == 16
        assert patient.attempts < eager.attempts

    def test_horizon_abandons_in_flight(self):
        network = MultistageNetwork(num_ports=8, hold_time=1000)
        messages = [
            NetworkMessage(source=0, dest=3, issue_time=0),
            NetworkMessage(source=1, dest=3, issue_time=0),
        ]
        result = network.run(ListWorkload(messages), horizon=10)
        assert result.completed == 1  # only the winner finished scheduling

    def test_throughput(self):
        network = MultistageNetwork(num_ports=8, hold_time=4)
        messages = [NetworkMessage(source=0, dest=1, issue_time=0)]
        result = network.run(ListWorkload(messages), horizon=100)
        assert result.throughput == pytest.approx(0.01)

    def test_invalid_hold_time(self):
        with pytest.raises(ValueError):
            MultistageNetwork(num_ports=8, hold_time=0)

    def test_invalid_horizon(self):
        network = MultistageNetwork(num_ports=8)
        with pytest.raises(ValueError):
            network.run(ListWorkload([]), horizon=0)
