"""Concurrent-cache stress: two processes share one ``--cache-dir``.

The serve story is many clients behind one warm content-addressed
cache, so the cache must tolerate genuinely concurrent writers: two
OS processes warming the same directory on identical *and* overlapping
sweeps must end with bit-identical aggregates, no corrupted entries,
and nothing quarantined.  (Within a process the engine already
serializes stores; across processes only the write-to-temp +
atomic-rename protocol protects us — this is the test that pins it.)
"""

import json
import os
import subprocess
import sys

import pytest

from repro.exec.cache import QUARANTINE_DIR, ResultCache
from repro.exec.context import ExecConfig
from repro.exec.plan import RunPlan, execute

#: Identical and overlapping work between the two writers: both run
#: figure5 seed=2 and figure6 seed=1; each also has a private sweep.
PARAMS = {"n_values": [2, 4], "repetitions": 2}
WRITER_A = [
    {"experiment": "figure5", "params": PARAMS, "seed": 1},
    {"experiment": "figure5", "params": PARAMS, "seed": 2},
    {"experiment": "figure6", "params": PARAMS, "seed": 1},
]
WRITER_B = [
    {"experiment": "figure5", "params": PARAMS, "seed": 2},
    {"experiment": "figure5", "params": PARAMS, "seed": 3},
    {"experiment": "figure6", "params": PARAMS, "seed": 1},
]

CHILD = """\
import json, sys
from repro.exec.context import ExecConfig
from repro.exec.plan import RunPlan, execute

cache_dir = sys.argv[1]
plans = json.loads(sys.argv[2])
digests = {}
# Two rounds: round one interleaves cold stores with the sibling
# process, round two reads entries the sibling may have written.
for round_index in range(2):
    for entry in plans:
        plan = RunPlan(
            entry["experiment"],
            params=entry["params"],
            seed=entry["seed"],
            exec_config=ExecConfig(
                jobs=1, cache=True, cache_dir=cache_dir, force_engine=True
            ),
        )
        outcome = execute(plan)
        key = f"{entry['experiment']}:{entry['seed']}:{round_index}"
        digests[key] = outcome.digest
print(json.dumps(digests))
"""


def spawn_writer(plans, cache_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", CHILD, str(cache_dir), json.dumps(plans)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


@pytest.mark.slow
def test_two_processes_warming_one_cache_agree(tmp_path):
    cache_dir = tmp_path / "shared-cache"

    writer_a = spawn_writer(WRITER_A, cache_dir)
    writer_b = spawn_writer(WRITER_B, cache_dir)
    out_a, err_a = writer_a.communicate(timeout=560)
    out_b, err_b = writer_b.communicate(timeout=560)
    assert writer_a.returncode == 0, err_a
    assert writer_b.returncode == 0, err_b
    digests_a = json.loads(out_a)
    digests_b = json.loads(out_b)

    # Serial uncached ground truth in this process.
    expected = {}
    for entry in WRITER_A + WRITER_B:
        key = f"{entry['experiment']}:{entry['seed']}"
        if key not in expected:
            expected[key] = execute(
                RunPlan(
                    entry["experiment"],
                    params=entry["params"],
                    seed=entry["seed"],
                )
            ).digest

    for digests in (digests_a, digests_b):
        for key, digest in digests.items():
            experiment, seed, _round = key.rsplit(":", 2)
            assert digest == expected[f"{experiment}:{seed}"], key
    # Cold and warm rounds agreed inside each writer too.
    for digests in (digests_a, digests_b):
        for key in list(digests):
            experiment, seed, _round = key.rsplit(":", 2)
            assert digests[f"{experiment}:{seed}:0"] == (
                digests[f"{experiment}:{seed}:1"]
            )

    # Nothing was corrupted or quarantined by the concurrent writers.
    quarantine = cache_dir / QUARANTINE_DIR
    assert not quarantine.exists() or not any(quarantine.iterdir())

    # A warm read-back in this process hits the cache and agrees.
    from repro.exec.context import get_stats

    before = get_stats().cache_hits
    outcome = execute(
        RunPlan(
            "figure5",
            params=PARAMS,
            seed=2,
            exec_config=ExecConfig(
                jobs=1, cache=True, cache_dir=str(cache_dir), force_engine=True
            ),
        )
    )
    assert outcome.digest == expected["figure5:2"]
    assert get_stats().cache_hits > before

    # Every entry on disk is loadable (no torn writes survived).  The
    # store lays entries out as <dir>/<key[:2]>/<key>.json.
    cache = ResultCache(str(cache_dir))
    keys = []
    for shard in os.listdir(cache_dir):
        shard_dir = cache_dir / shard
        if shard == QUARANTINE_DIR or not shard_dir.is_dir():
            continue
        keys.extend(
            name[: -len(".json")]
            for name in os.listdir(shard_dir)
            if name.endswith(".json")
        )
    assert keys, "the writers should have populated the cache"
    for key in keys:
        assert cache.get(key) is not None, f"unreadable cache entry {key}"
    # ... and none of those reads quarantined anything.
    assert not quarantine.exists() or not any(quarantine.iterdir())
