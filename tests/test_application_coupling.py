"""Tests for the application model and the Patel coupling."""

import numpy as np
import pytest

from repro.barrier.application import (
    ApplicationSimulator,
    simulate_application,
)
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.network.coupling import CouplingEstimate, couple_barrier_traffic


class TestApplicationSimulator:
    def test_single_round_single_processor(self):
        simulator = ApplicationSimulator(1, work_interval=50, rounds=1, jitter=0.0)
        result = simulator.run_once(np.random.default_rng(0))
        # Work 50 cycles, then variable F&A + flag write.
        assert result.completion_time >= 50
        assert result.accesses_per_process == [2]

    def test_all_rounds_complete(self):
        simulator = ApplicationSimulator(8, work_interval=100, rounds=5)
        result = simulator.run_once(np.random.default_rng(1))
        assert result.completion_time > 5 * 80  # 5 rounds of >= 80 cycles
        assert len(result.arrival_spans) == 5
        assert all(span >= 0 for span in result.arrival_spans)

    def test_no_jitter_deterministic_work(self):
        simulator = ApplicationSimulator(
            4, work_interval=100, rounds=3, jitter=0.0
        )
        a = simulator.run_once(np.random.default_rng(0))
        b = simulator.run_once(np.random.default_rng(99))
        # With zero jitter the rng never affects the outcome.
        assert a.completion_time == b.completion_time

    def test_completion_at_least_ideal(self):
        aggregate = simulate_application(
            16, 200, policy=NoBackoff(), rounds=4, repetitions=3
        )
        result_ideal = 4 * 200
        assert aggregate.completion.mean >= result_ideal * 0.8

    def test_overhead_fraction(self):
        aggregate = simulate_application(
            32, 500, policy=NoBackoff(), rounds=4, repetitions=3
        )
        assert aggregate.overhead.mean > 0.0

    def test_variable_backoff_free_end_to_end(self):
        none = simulate_application(
            32, 500, policy=NoBackoff(), rounds=5, repetitions=5
        )
        var = simulate_application(
            32, 500, policy=VariableBackoff(), rounds=5, repetitions=5
        )
        assert var.completion.mean <= none.completion.mean * 1.02
        assert var.accesses.mean < none.accesses.mean

    def test_binary_backoff_cuts_traffic(self):
        none = simulate_application(
            32, 1000, policy=NoBackoff(), rounds=5, repetitions=5
        )
        b2 = simulate_application(
            32, 1000, policy=ExponentialFlagBackoff(2), rounds=5, repetitions=5
        )
        assert b2.traffic_rate.mean < none.traffic_rate.mean / 5

    def test_aggressive_base_compounds_overshoot(self):
        b2 = simulate_application(
            32, 1000, policy=ExponentialFlagBackoff(2), rounds=8, repetitions=3
        )
        b8 = simulate_application(
            32, 1000, policy=ExponentialFlagBackoff(8), rounds=8, repetitions=3
        )
        assert b8.completion.mean > b2.completion.mean
        assert b8.arrival_span.mean > b2.arrival_span.mean

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ApplicationSimulator(0, 100)
        with pytest.raises(ValueError):
            ApplicationSimulator(4, 0)
        with pytest.raises(ValueError):
            ApplicationSimulator(4, 100, rounds=0)
        with pytest.raises(ValueError):
            ApplicationSimulator(4, 100, jitter=1.0)

    def test_reproducible(self):
        a = simulate_application(8, 200, rounds=3, repetitions=3, seed=7)
        b = simulate_application(8, 200, rounds=3, repetitions=3, seed=7)
        assert a.completion.mean == b.completion.mean


class TestCoupling:
    def test_offered_rate_clamped(self):
        estimate = CouplingEstimate(
            num_ports=64, background_rate=0.9, barrier_rate=0.5
        )
        assert estimate.offered_rate == 1.0

    def test_acceptance_decreases_with_traffic(self):
        light = CouplingEstimate(64, background_rate=0.1, barrier_rate=0.0)
        heavy = CouplingEstimate(64, background_rate=0.1, barrier_rate=0.4)
        assert heavy.acceptance_probability < light.acceptance_probability

    def test_slowdown_sign(self):
        light = CouplingEstimate(64, 0.1, 0.0)
        heavy = CouplingEstimate(64, 0.1, 0.4)
        assert heavy.slowdown_vs(light) > 0
        assert light.slowdown_vs(heavy) < 0

    def test_couple_barrier_traffic(self):
        estimate = couple_barrier_traffic(
            num_ports=64,
            background_rate=0.2,
            barrier_accesses_per_process=150.0,
            barrier_period=1000.0,
        )
        assert estimate.barrier_rate == pytest.approx(0.15)
        assert 0.0 < estimate.acceptance_probability < 1.0

    def test_couple_invalid_inputs(self):
        with pytest.raises(ValueError):
            couple_barrier_traffic(64, -0.1, 10, 100)
        with pytest.raises(ValueError):
            couple_barrier_traffic(64, 0.1, -1, 100)
        with pytest.raises(ValueError):
            couple_barrier_traffic(64, 0.1, 10, 0)

    def test_effective_bandwidth_bounded(self):
        estimate = CouplingEstimate(64, 0.5, 0.3)
        assert estimate.effective_bandwidth <= estimate.offered_rate
