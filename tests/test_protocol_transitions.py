"""Systematic state-transition tests for both coherence protocols.

Each test pins the exact transactions, invalidations and resulting
state for one (initial sharing configuration, operation) pair — the
protocol truth tables the higher-level statistics rest on.
"""

import pytest

from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.memory.snoopy import SnoopyConfig, SnoopySimulator
from repro.trace.record import Op, TraceRecord

BLOCK_ADDR = 0x400
BLOCK = BLOCK_ADDR // 16


def rec(cpu, op, addr=BLOCK_ADDR):
    return TraceRecord(cpu=cpu, op=op, address=addr, is_sync=False)


def directory_sim(pointers=4):
    return CoherenceSimulator(
        CoherenceConfig(num_cpus=4, num_pointers=pointers, cache_bytes=1024,
                        block_bytes=16)
    )


def snoopy_sim(protocol="invalidate", fiw=False):
    return SnoopySimulator(
        SnoopyConfig(num_cpus=4, protocol=protocol, fetch_intent_write=fiw,
                     cache_bytes=1024, block_bytes=16)
    )


class TestDirectoryTransitions:
    """Dir_i_NB truth table: (state, op) -> (traffic, invalidations)."""

    def test_uncached_read(self):
        sim = directory_sim()
        sim.process(rec(0, Op.READ))
        assert sim.stats.data_traffic == 2
        assert sim.stats.total_invalidations == 0
        entry = sim.directory.peek(BLOCK)
        assert entry.sharers == {0}
        assert entry.owner is None

    def test_uncached_write(self):
        sim = directory_sim()
        sim.process(rec(0, Op.WRITE))
        assert sim.stats.data_traffic == 2
        entry = sim.directory.peek(BLOCK)
        assert entry.owner == 0

    def test_shared_read_adds_sharer(self):
        sim = directory_sim()
        sim.process(rec(0, Op.READ))
        sim.process(rec(1, Op.READ))
        assert sim.stats.data_traffic == 4
        assert sim.directory.peek(BLOCK).sharers == {0, 1}

    def test_dirty_remote_read_downgrades(self):
        sim = directory_sim()
        sim.process(rec(0, Op.WRITE))
        sim.process(rec(1, Op.READ))
        # miss (2) + recall/writeback (2).
        assert sim.stats.data_traffic == 2 + 4
        entry = sim.directory.peek(BLOCK)
        assert entry.owner is None
        assert entry.sharers == {0, 1}

    def test_dirty_remote_write_transfers_ownership(self):
        sim = directory_sim()
        sim.process(rec(0, Op.WRITE))
        before = sim.stats.data_traffic
        sim.process(rec(1, Op.WRITE))
        # miss (2) + recall (2); one invalidation of the old owner.
        assert sim.stats.data_traffic == before + 4
        assert sim.stats.invalidations_on_write == 1
        entry = sim.directory.peek(BLOCK)
        assert entry.owner == 1
        assert entry.sharers == {1}

    def test_shared_write_hit_invalidates_each_copy(self):
        sim = directory_sim()
        for cpu in (0, 1, 2):
            sim.process(rec(cpu, Op.READ))
        before = sim.stats.data_traffic
        sim.process(rec(0, Op.WRITE))
        # ownership request (1) + one message per other sharer (2).
        assert sim.stats.data_traffic == before + 3
        assert sim.stats.invalidations_on_write == 2

    def test_shared_write_miss_invalidates_each_copy(self):
        sim = directory_sim()
        for cpu in (0, 1):
            sim.process(rec(cpu, Op.READ))
        before = sim.stats.data_traffic
        sim.process(rec(2, Op.WRITE))
        # miss (2) + one message per sharer (2).
        assert sim.stats.data_traffic == before + 4
        assert sim.stats.invalidations_on_write == 2

    def test_pointer_overflow_on_read(self):
        sim = directory_sim(pointers=2)
        for cpu in (0, 1):
            sim.process(rec(cpu, Op.READ))
        before = sim.stats.data_traffic
        sim.process(rec(2, Op.READ))
        # miss (2) + one eviction message (1).
        assert sim.stats.data_traffic == before + 3
        assert sim.stats.invalidations_on_overflow == 1
        assert len(sim.directory.peek(BLOCK).sharers) == 2

    def test_owner_rewrite_free(self):
        sim = directory_sim()
        sim.process(rec(0, Op.WRITE))
        before = sim.stats.data_traffic
        sim.process(rec(0, Op.WRITE))
        sim.process(rec(0, Op.READ))
        assert sim.stats.data_traffic == before


class TestSnoopyTransitions:
    """Bus truth table: (state, op) -> bus transactions."""

    @pytest.mark.parametrize(
        "protocol,fiw,expected",
        [("invalidate", False, 2), ("invalidate", True, 1), ("update", False, 1)],
    )
    def test_cold_write_cost(self, protocol, fiw, expected):
        sim = snoopy_sim(protocol, fiw)
        sim.process(rec(0, Op.WRITE))
        assert sim.stats.bus_transactions == expected

    def test_invalidate_shared_write_single_broadcast(self):
        sim = snoopy_sim()
        for cpu in (0, 1, 2, 3):
            sim.process(rec(cpu, Op.READ))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.WRITE))
        assert sim.stats.bus_transactions == before + 1
        assert sim.stats.copies_invalidated == 3

    def test_update_shared_write_single_broadcast_keeps_copies(self):
        sim = snoopy_sim("update")
        for cpu in (0, 1, 2, 3):
            sim.process(rec(cpu, Op.READ))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.WRITE))
        assert sim.stats.bus_transactions == before + 1
        for cpu in (1, 2, 3):
            assert sim.caches[cpu].contains(BLOCK)

    def test_update_write_miss_with_sharers(self):
        sim = snoopy_sim("update")
        sim.process(rec(0, Op.READ))
        before = sim.stats.bus_transactions
        sim.process(rec(1, Op.WRITE))
        # read (1) + update broadcast (1).
        assert sim.stats.bus_transactions == before + 2
        assert sim.caches[0].contains(BLOCK)

    def test_invalidate_write_miss_dirty_remote(self):
        sim = snoopy_sim(fiw=True)
        sim.process(rec(0, Op.WRITE))
        before = sim.stats.bus_transactions
        sim.process(rec(1, Op.WRITE))
        # rdx (1) + flush (1); old copy invalidated.
        assert sim.stats.bus_transactions == before + 2
        assert not sim.caches[0].contains(BLOCK)

    def test_read_after_invalidate_refetches(self):
        sim = snoopy_sim()
        sim.process(rec(0, Op.READ))
        sim.process(rec(1, Op.READ))
        sim.process(rec(1, Op.WRITE))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.READ))
        # Copy was invalidated: miss + flush of cpu1's dirty copy.
        assert sim.stats.bus_transactions == before + 2

    def test_read_after_update_hits(self):
        sim = snoopy_sim("update")
        sim.process(rec(0, Op.READ))
        sim.process(rec(1, Op.READ))
        sim.process(rec(1, Op.WRITE))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.READ))
        assert sim.stats.bus_transactions == before  # copy stayed valid

    def test_sharing_width_does_not_change_write_cost(self):
        # The Section 2.1 scalability point, as a truth-table fact.
        costs = []
        for width in (2, 4):
            sim = snoopy_sim()
            for cpu in range(width):
                sim.process(rec(cpu, Op.READ))
            before = sim.stats.bus_transactions
            sim.process(rec(0, Op.WRITE))
            costs.append(sim.stats.bus_transactions - before)
        assert costs[0] == costs[1] == 1
