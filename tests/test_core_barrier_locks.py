"""Tests for barrier algorithm descriptions and lock strategies."""

import pytest

from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.core.barrier import (
    BlockingBarrier,
    CombiningTreeBarrier,
    SingleVariableBarrier,
    TangYewBarrier,
)
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock


class TestTangYewBarrier:
    def test_defaults(self):
        barrier = TangYewBarrier(8)
        assert barrier.num_processors == 8
        assert isinstance(barrier.backoff, NoBackoff)
        assert barrier.separate_modules

    def test_custom_policy(self):
        barrier = TangYewBarrier(8, backoff=ExponentialFlagBackoff(2))
        assert barrier.backoff.base == 2

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            TangYewBarrier(0)


class TestSingleVariableBarrier:
    def test_shares_module(self):
        assert not SingleVariableBarrier(8).separate_modules

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            SingleVariableBarrier(0)


class TestCombiningTreeBarrier:
    def test_level_sizes_power_of_degree(self):
        barrier = CombiningTreeBarrier(64, degree=4)
        assert barrier.level_sizes() == [64, 16, 4]
        assert barrier.depth == 3

    def test_level_sizes_ragged(self):
        barrier = CombiningTreeBarrier(10, degree=4)
        # 10 -> ceil(10/4)=3 -> ceil(3/4)=1.
        assert barrier.level_sizes() == [10, 3]

    def test_single_processor(self):
        assert CombiningTreeBarrier(1, degree=4).level_sizes() == [1]

    def test_degree_two_depth(self):
        assert CombiningTreeBarrier(64, degree=2).depth == 6

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            CombiningTreeBarrier(8, degree=1)


class TestBlockingBarrier:
    def test_defaults(self):
        barrier = BlockingBarrier(16)
        assert barrier.enqueue_overhead == 100
        assert barrier.wakeup_overhead == 100

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            BlockingBarrier(16, enqueue_overhead=-1)


class TestLockStrategies:
    def test_tas_retries_immediately(self):
        assert TestAndSetLock().retry_wait(5, 10) == 0

    def test_ttas_retries_immediately(self):
        assert TestAndTestAndSetLock().retry_wait(5, 10) == 0

    def test_backoff_lock_proportional(self):
        lock = BackoffLock(hold_time=8)
        assert lock.retry_wait(1, 4) == 32

    def test_backoff_lock_minimum_wait(self):
        lock = BackoffLock(hold_time=8, minimum_wait=3)
        assert lock.retry_wait(1, 0) == 3

    def test_backoff_lock_invalid_minimum(self):
        with pytest.raises(ValueError):
            BackoffLock(hold_time=8, minimum_wait=-1)

    def test_strategy_names(self):
        assert TestAndSetLock().name == "test-and-set"
        assert TestAndTestAndSetLock().name == "test-and-test-and-set"
        assert BackoffLock(hold_time=1).name == "backoff"
