"""Tests for profile-driven policy selection (Section 8 pipeline)."""

import pytest

from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    ThresholdQueueBackoff,
    VariableBackoff,
)
from repro.core.selection import (
    PolicyAdvisor,
    Recommendation,
    SynchronizationProfile,
)
from repro.trace.apps import build_app
from repro.trace.scheduler import PostMortemScheduler


class TestSynchronizationProfile:
    def test_spread_ratio(self):
        profile = SynchronizationProfile(num_processors=64, interval_a=1000)
        assert profile.spread_ratio == pytest.approx(15.625)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SynchronizationProfile(num_processors=0, interval_a=10)
        with pytest.raises(ValueError):
            SynchronizationProfile(num_processors=4, interval_a=-1)

    def test_from_trace(self):
        trace = PostMortemScheduler(build_app("FFT", scale=0.2), 8).run()
        profile = SynchronizationProfile.from_trace(trace)
        assert profile.num_processors == 8
        assert profile.label == "FFT"
        assert profile.arrival_offsets
        assert profile.interval_e is not None


class TestAnalyticRecommendation:
    def test_single_process_no_backoff(self):
        profile = SynchronizationProfile(num_processors=1, interval_a=0)
        recommendation = PolicyAdvisor().recommend(profile)
        assert isinstance(recommendation.policy, NoBackoff)

    def test_tight_arrivals_variable_backoff(self):
        profile = SynchronizationProfile(num_processors=256, interval_a=100)
        recommendation = PolicyAdvisor().recommend(profile)
        assert type(recommendation.policy) is VariableBackoff
        assert "tight" in recommendation.rationale

    def test_spread_arrivals_binary_exponential(self):
        profile = SynchronizationProfile(num_processors=16, interval_a=300)
        recommendation = PolicyAdvisor().recommend(profile)
        assert isinstance(recommendation.policy, ExponentialFlagBackoff)
        assert recommendation.policy.base == 2

    def test_cheap_waiting_aggressive_base(self):
        profile = SynchronizationProfile(num_processors=16, interval_a=300)
        advisor = PolicyAdvisor(waiting_weight=0.0)
        recommendation = advisor.recommend(profile)
        assert recommendation.policy.base == 8

    def test_huge_spread_queues(self):
        profile = SynchronizationProfile(num_processors=16, interval_a=50_000)
        recommendation = PolicyAdvisor(queue_overhead=100).recommend(profile)
        assert isinstance(recommendation.policy, ThresholdQueueBackoff)

    def test_recommendation_str(self):
        profile = SynchronizationProfile(num_processors=4, interval_a=100)
        text = str(PolicyAdvisor().recommend(profile))
        assert "—" in text

    def test_invalid_advisor_parameters(self):
        with pytest.raises(ValueError):
            PolicyAdvisor(waiting_weight=-1)
        with pytest.raises(ValueError):
            PolicyAdvisor(queue_overhead=0)


class TestEmpiricalSelection:
    def test_rank_sorted_best_first(self):
        profile = SynchronizationProfile(num_processors=16, interval_a=1000)
        ranking = PolicyAdvisor().rank(profile, repetitions=5)
        costs = [cost for __, cost in ranking]
        assert costs == sorted(costs)
        assert len(ranking) == 5  # the paper's five policies

    def test_backoff_wins_at_large_a(self):
        profile = SynchronizationProfile(num_processors=16, interval_a=1000)
        recommendation = PolicyAdvisor().select(profile, repetitions=5)
        assert isinstance(recommendation, Recommendation)
        assert not isinstance(recommendation.policy, (NoBackoff,))
        assert "empirically best" in recommendation.rationale

    def test_custom_candidates(self):
        profile = SynchronizationProfile(num_processors=8, interval_a=500)
        candidates = {
            "none": NoBackoff(),
            "b2": ExponentialFlagBackoff(2),
        }
        ranking = PolicyAdvisor().rank(profile, candidates, repetitions=5)
        assert ranking[0][0] == "b2"

    def test_uses_measured_offsets_when_present(self):
        trace = PostMortemScheduler(build_app("SIMPLE", scale=0.15), 8).run()
        profile = SynchronizationProfile.from_trace(trace)
        ranking = PolicyAdvisor().rank(profile, repetitions=5)
        assert ranking  # runs end-to-end on empirical arrivals

    def test_reproducible(self):
        profile = SynchronizationProfile(num_processors=8, interval_a=500)
        a = PolicyAdvisor().rank(profile, repetitions=5, seed=3)
        b = PolicyAdvisor().rank(profile, repetitions=5, seed=3)
        assert a == b
