"""Tests for the trace-driven Dir_i_NB coherence simulator."""

import pytest

from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.trace.record import Op, TraceRecord


def rec(cpu, op, address, is_sync=False):
    return TraceRecord(cpu=cpu, op=op, address=address, is_sync=is_sync)


def simulator(num_cpus=4, pointers=4, cache_sync=True, cache_bytes=1024):
    return CoherenceSimulator(
        CoherenceConfig(
            num_cpus=num_cpus,
            num_pointers=pointers,
            cache_sync=cache_sync,
            cache_bytes=cache_bytes,
            block_bytes=16,
        )
    )


class TestBasicProtocol:
    def test_read_miss_costs_two_transactions(self):
        sim = simulator()
        sim.process(rec(0, Op.READ, 0x100))
        assert sim.stats.data_traffic == 2
        assert sim.stats.misses == 1

    def test_read_hit_costs_nothing(self):
        sim = simulator()
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(0, Op.READ, 0x104))  # same 16-byte block
        assert sim.stats.hits == 1
        assert sim.stats.data_traffic == 2

    def test_write_then_rewrite_is_silent(self):
        sim = simulator()
        sim.process(rec(0, Op.WRITE, 0x100))
        traffic = sim.stats.data_traffic
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.data_traffic == traffic

    def test_write_hit_to_clean_invalidates_sharers(self):
        sim = simulator()
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(1, Op.READ, 0x100))
        sim.process(rec(2, Op.READ, 0x100))
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.invalidations_on_write == 2
        assert not sim.caches[1].contains(0x10)
        assert not sim.caches[2].contains(0x10)
        assert sim.caches[0].is_dirty(0x10)

    def test_figure1_histogram_records_width(self):
        sim = simulator()
        for cpu in range(3):
            sim.process(rec(cpu, Op.READ, 0x100))
        sim.process(rec(0, Op.WRITE, 0x100))
        histogram = sim.stats.write_invalidation_histogram
        assert histogram.count(2) == 1

    def test_write_miss_recalls_dirty_copy(self):
        sim = simulator()
        sim.process(rec(0, Op.WRITE, 0x100))
        sim.process(rec(1, Op.WRITE, 0x100))
        assert sim.stats.writebacks == 1
        assert not sim.caches[0].contains(0x10)
        assert sim.caches[1].is_dirty(0x10)

    def test_read_miss_downgrades_dirty_copy(self):
        sim = simulator()
        sim.process(rec(0, Op.WRITE, 0x100))
        sim.process(rec(1, Op.READ, 0x100))
        assert sim.stats.writebacks == 1
        assert sim.caches[0].contains(0x10)
        assert not sim.caches[0].is_dirty(0x10)
        entry = sim.directory.peek(0x10)
        assert entry.owner is None
        assert entry.sharers == {0, 1}

    def test_rmw_treated_as_write(self):
        sim = simulator()
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(1, Op.RMW, 0x100))
        assert sim.caches[1].is_dirty(0x10)
        assert not sim.caches[0].contains(0x10)


class TestPointerOverflow:
    def test_overflow_invalidates_oldest(self):
        sim = simulator(pointers=2)
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(1, Op.READ, 0x100))
        sim.process(rec(2, Op.READ, 0x100))
        assert sim.stats.invalidations_on_overflow == 1
        entry = sim.directory.peek(0x10)
        assert len(entry.sharers) == 2
        assert 2 in entry.sharers

    def test_full_map_never_overflows(self):
        sim = simulator(num_cpus=8, pointers=8)
        for cpu in range(8):
            sim.process(rec(cpu, Op.READ, 0x100))
        assert sim.stats.invalidations_on_overflow == 0

    def test_invariants_hold_under_overflow(self):
        sim = simulator(pointers=2)
        for cpu in range(4):
            sim.process(rec(cpu, Op.READ, 0x200))
        sim.check_invariants()


class TestReplacement:
    def test_eviction_notifies_directory(self):
        sim = simulator(cache_bytes=4 * 16)  # 4 sets
        sim.process(rec(0, Op.READ, 0x000))  # block 0, set 0
        sim.process(rec(0, Op.READ, 0x040))  # block 4, set 0: evicts 0
        assert sim.directory.peek(0) is None
        sim.check_invariants()

    def test_dirty_eviction_writes_back(self):
        sim = simulator(cache_bytes=4 * 16)
        sim.process(rec(0, Op.WRITE, 0x000))
        before = sim.stats.writebacks
        sim.process(rec(0, Op.READ, 0x040))
        assert sim.stats.writebacks == before + 1


class TestSyncClassification:
    def test_sync_refs_counted_separately(self):
        sim = simulator()
        sim.process(rec(0, Op.RMW, 0x100, is_sync=True))
        sim.process(rec(0, Op.READ, 0x200))
        assert sim.stats.sync_refs == 1
        assert sim.stats.data_refs == 1

    def test_sync_invalidation_attribution(self):
        sim = simulator()
        for cpu in range(3):
            sim.process(rec(cpu, Op.READ, 0x100, is_sync=True))
        sim.process(rec(0, Op.WRITE, 0x100, is_sync=True))
        assert sim.stats.sync_refs_invalidating == 1
        assert sim.stats.data_refs_invalidating == 0

    def test_uncached_sync_costs_two(self):
        sim = simulator(cache_sync=False)
        sim.process(rec(0, Op.READ, 0x100, is_sync=True))
        sim.process(rec(0, Op.READ, 0x100, is_sync=True))
        assert sim.stats.sync_traffic == 4
        assert sim.stats.hits == 0  # never touches the cache

    def test_uncached_sync_does_not_pollute_directory(self):
        sim = simulator(cache_sync=False)
        sim.process(rec(0, Op.WRITE, 0x100, is_sync=True))
        assert sim.directory.peek(0x10) is None

    def test_traffic_percentages(self):
        sim = simulator(cache_sync=False)
        sim.process(rec(0, Op.READ, 0x100, is_sync=True))  # 2 sync
        sim.process(rec(0, Op.READ, 0x200))  # 2 data (miss)
        assert sim.stats.sync_traffic_pct == pytest.approx(50.0)
        assert sim.stats.sync_ref_fraction_pct == pytest.approx(50.0)


class TestStatsProperties:
    def test_percentages_empty_stats(self):
        sim = simulator()
        assert sim.stats.sync_invalidation_pct == 0.0
        assert sim.stats.data_invalidation_pct == 0.0
        assert sim.stats.sync_traffic_pct == 0.0
        assert sim.stats.miss_rate == 0.0

    def test_run_consumes_iterable(self):
        sim = simulator()
        trace = [rec(0, Op.READ, 0x100), rec(1, Op.READ, 0x100)]
        stats = sim.run(iter(trace))
        assert stats.refs == 2


class TestColumnFastPath:
    def test_columns_match_record_path(self):
        from repro.trace.apps import build_app
        from repro.trace.scheduler import PostMortemScheduler

        trace = PostMortemScheduler(build_app("FFT", scale=0.15), 8).run()
        via_records = simulator(num_cpus=8, pointers=2)
        for record in iter(trace):
            via_records.process(record)
        via_columns = simulator(num_cpus=8, pointers=2)
        via_columns.run(trace)  # auto-detects the column fast path
        a, b = via_records.stats, via_columns.stats
        assert a.refs == b.refs
        assert a.sync_refs == b.sync_refs
        assert a.total_traffic == b.total_traffic
        assert a.total_invalidations == b.total_invalidations
        assert a.hits == b.hits
        assert a.misses == b.misses
        assert a.write_invalidation_histogram.items() == (
            b.write_invalidation_histogram.items()
        )

    def test_run_columns_direct(self):
        sim = simulator()
        sim.run_columns([0, 1], [0, 0], [0x100, 0x100], [False, False])
        assert sim.stats.refs == 2
        assert sim.stats.misses == 2
