"""Tests for seeded random-stream management."""

from repro.sim.rng import RandomStreams, spawn_stream


class TestSpawnStream:
    def test_same_key_same_sequence(self):
        a = spawn_stream(7, "arrivals")
        b = spawn_stream(7, "arrivals")
        assert list(a.integers(100, size=10)) == list(b.integers(100, size=10))

    def test_different_names_differ(self):
        a = spawn_stream(7, "arrivals")
        b = spawn_stream(7, "departures")
        assert list(a.integers(10**9, size=8)) != list(b.integers(10**9, size=8))

    def test_different_seeds_differ(self):
        a = spawn_stream(7, "arrivals")
        b = spawn_stream(8, "arrivals")
        assert list(a.integers(10**9, size=8)) != list(b.integers(10**9, size=8))


class TestRandomStreams:
    def test_get_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.get("x") is streams.get("x")

    def test_reset_reseeds(self):
        streams = RandomStreams(seed=1)
        first = list(streams.get("x").integers(10**9, size=5))
        streams.reset()
        second = list(streams.get("x").integers(10**9, size=5))
        assert first == second

    def test_independent_names(self):
        streams = RandomStreams(seed=1)
        a = streams.get("a")
        # Drawing from one stream must not perturb another.
        before = RandomStreams(seed=1).get("b").integers(10**9, size=5)
        a.integers(10**9, size=100)
        after = streams.get("b").integers(10**9, size=5)
        assert list(before) == list(after)

    def test_child_derivation_is_stable(self):
        one = RandomStreams(seed=3).child("phase")
        two = RandomStreams(seed=3).child("phase")
        assert one.seed == two.seed

    def test_child_differs_from_parent(self):
        parent = RandomStreams(seed=3)
        child = parent.child("phase")
        assert child.seed != parent.seed
