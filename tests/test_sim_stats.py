"""Tests for the statistics containers."""

import math

import pytest

from repro.sim.stats import (
    Histogram,
    RunningStats,
    Series,
    confidence_interval,
    mean,
)


class TestMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_simple(self):
        assert mean([1, 2, 3]) == 2.0


class TestConfidenceInterval:
    def test_single_value_zero_width(self):
        center, half = confidence_interval([5.0])
        assert center == 5.0
        assert half == 0.0

    def test_known_values(self):
        center, half = confidence_interval([1.0, 2.0, 3.0], z=1.0)
        assert center == 2.0
        assert half == pytest.approx(math.sqrt(1.0 / 3.0))


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 8.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 8.0

    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.stddev == 0.0

    def test_single_value_zero_variance(self):
        stats = RunningStats()
        stats.add(4.2)
        assert stats.variance == 0.0

    def test_relative_stddev(self):
        stats = RunningStats()
        stats.extend([10.0, 10.0, 10.0])
        assert stats.relative_stddev == 0.0

    def test_merge_matches_sequential(self):
        values = [1.5, 2.5, 8.0, -3.0, 4.0, 4.0, 11.0]
        sequential = RunningStats()
        sequential.extend(values)
        left, right = RunningStats(), RunningStats()
        left.extend(values[:3])
        right.extend(values[3:])
        left.merge(right)
        assert left.count == sequential.count
        assert left.mean == pytest.approx(sequential.mean)
        assert left.variance == pytest.approx(sequential.variance)
        assert left.minimum == sequential.minimum
        assert left.maximum == sequential.maximum

    def test_merge_empty_noop(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0])
        stats.merge(RunningStats())
        assert stats.count == 2

    def test_merge_into_empty(self):
        stats = RunningStats()
        other = RunningStats()
        other.extend([1.0, 3.0])
        stats.merge(other)
        assert stats.mean == 2.0


class TestHistogram:
    def test_counts_and_total(self):
        histogram = Histogram()
        histogram.add(1)
        histogram.add(1)
        histogram.add(3, count=4)
        assert histogram.count(1) == 2
        assert histogram.count(3) == 4
        assert histogram.total == 6

    def test_fraction(self):
        histogram = Histogram()
        histogram.add(0, 3)
        histogram.add(5, 1)
        assert histogram.fraction(0) == pytest.approx(0.75)
        assert histogram.fraction(99) == 0.0

    def test_cumulative_fraction(self):
        histogram = Histogram()
        histogram.add(1, 5)
        histogram.add(2, 3)
        histogram.add(10, 2)
        assert histogram.cumulative_fraction(2) == pytest.approx(0.8)

    def test_empty_fractions_zero(self):
        histogram = Histogram()
        assert histogram.fraction(0) == 0.0
        assert histogram.cumulative_fraction(5) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(0, count=-1)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(1, 2)
        b.add(1, 3)
        b.add(2, 1)
        a.merge(b)
        assert a.count(1) == 5
        assert a.count(2) == 1

    def test_keys_sorted(self):
        histogram = Histogram()
        for key in (5, 1, 3):
            histogram.add(key)
        assert histogram.keys() == [1, 3, 5]


class TestSeries:
    def test_add_and_lookup(self):
        series = Series(label="curve")
        series.add(2, 10.0)
        series.add(4, 20.0)
        assert series.y_at(4) == 20.0
        assert len(series) == 2

    def test_missing_x_raises(self):
        series = Series(label="curve")
        series.add(2, 10.0)
        with pytest.raises(KeyError):
            series.y_at(3)

    def test_points(self):
        series = Series(label="curve")
        series.add(1, 2.0)
        assert series.points() == [(1, 2.0)]
