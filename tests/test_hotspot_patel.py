"""Tests for the hot-spot workload and the Patel analytic model."""

import pytest

from repro.network.hotspot import (
    HotspotWorkload,
    hotspot_sweep,
    uniform_baseline_throughput,
)
from repro.network.netbackoff import ExponentialRetryBackoff, ImmediateRetry
from repro.network.patel import (
    patel_acceptance_probability,
    patel_bandwidth,
    patel_stage_rates,
)


class TestHotspotWorkload:
    def test_initial_messages_one_per_port(self):
        workload = HotspotWorkload(num_ports=16, hot_fraction=0.1, seed=1)
        messages = workload.initial_messages()
        assert len(messages) == 16
        assert sorted(m.source for m in messages) == list(range(16))

    def test_hot_fraction_one_targets_hot_dest(self):
        workload = HotspotWorkload(
            num_ports=16, hot_fraction=1.0, hot_dest=3, seed=1
        )
        for message in workload.initial_messages():
            assert message.dest == 3

    def test_closed_loop_reissues(self):
        workload = HotspotWorkload(num_ports=8, hot_fraction=0.0, think_time=5)
        first = workload.initial_messages()[0]
        first.completed_time = 20
        successor = workload.on_complete(first, 20)
        assert successor is not None
        assert successor.source == first.source
        assert successor.issue_time == 25

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            HotspotWorkload(num_ports=8, hot_fraction=1.5)

    def test_invalid_hot_dest(self):
        with pytest.raises(ValueError):
            HotspotWorkload(num_ports=8, hot_fraction=0.1, hot_dest=8)


class TestHotspotSweep:
    def test_hot_traffic_degrades_throughput(self):
        results = hotspot_sweep(
            num_ports=16,
            hot_fractions=(0.0, 0.5),
            policies=[ImmediateRetry()],
            horizon=5_000,
        )
        per = results["immediate"]
        assert per[0.5].throughput < per[0.0].throughput

    def test_backoff_reduces_attempts_under_hotspot(self):
        results = hotspot_sweep(
            num_ports=16,
            hot_fractions=(0.3,),
            policies=[ImmediateRetry(), ExponentialRetryBackoff(base=2)],
            horizon=5_000,
        )
        eager = results["immediate"][0.3]
        patient = results["exponential"][0.3]
        assert patient.attempts_per_message.mean < eager.attempts_per_message.mean

    def test_uniform_baseline_positive(self):
        assert uniform_baseline_throughput(16, horizon=3_000) > 0


class TestPatelModel:
    def test_stage_rates_monotone_nonincreasing(self):
        rates = patel_stage_rates(0.9, num_stages=6)
        assert len(rates) == 7
        for earlier, later in zip(rates, rates[1:]):
            assert later <= earlier + 1e-12

    def test_zero_rate_stays_zero(self):
        assert patel_bandwidth(0.0, 64) == 0.0

    def test_bandwidth_below_request_rate(self):
        assert patel_bandwidth(1.0, 64) < 1.0

    def test_bandwidth_increases_with_request_rate(self):
        low = patel_bandwidth(0.2, 64)
        high = patel_bandwidth(0.8, 64)
        assert high > low

    def test_bandwidth_decreases_with_network_size(self):
        small = patel_bandwidth(1.0, 16)
        large = patel_bandwidth(1.0, 256)
        assert large < small

    def test_known_value_one_stage(self):
        # One 2x2 stage at full load: 1 - (1 - 1/2)^2 = 0.75.
        assert patel_bandwidth(1.0, 2) == pytest.approx(0.75)

    def test_acceptance_probability(self):
        assert patel_acceptance_probability(0.0, 64) == 1.0
        p = patel_acceptance_probability(1.0, 64)
        assert 0.0 < p < 1.0

    def test_invalid_request_rate(self):
        with pytest.raises(ValueError):
            patel_stage_rates(1.5, 3)

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            patel_bandwidth(0.5, 48)
