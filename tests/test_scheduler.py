"""Tests for the post-mortem scheduler."""

import pytest

from repro.trace.program import (
    AddressSpace,
    ParallelLoop,
    Program,
    ReplicateSection,
    SerialSection,
)
from repro.trace.record import Op
from repro.trace.scheduler import PostMortemScheduler


def make_program(sections):
    return Program("test", AddressSpace(), list(sections))


def schedule(sections, num_cpus):
    return PostMortemScheduler(make_program(sections), num_cpus).run()


BODY = [(Op.READ, 0x1000), (Op.WRITE, 0x1010)]


class TestSingleLoop:
    def test_every_iteration_executes_exactly_once(self):
        trace = schedule([ParallelLoop("l", 10, BODY)], num_cpus=3)
        body_reads = sum(
            1 for r in trace if not r.is_sync and r.op is Op.READ
        )
        assert body_reads == 10  # one per iteration

    def test_barrier_present(self):
        trace = schedule([ParallelLoop("l", 4, BODY)], num_cpus=2)
        assert len(trace.barriers) == 1
        barrier = trace.barriers[0]
        assert len(barrier.arrivals) == 2
        assert barrier.flag_set_cycle is not None

    def test_all_cpus_arrive_once_per_barrier(self):
        trace = schedule([ParallelLoop("l", 7, BODY)], num_cpus=4)
        cpus = sorted(cpu for cpu, __ in trace.barriers[0].arrivals)
        assert cpus == [0, 1, 2, 3]

    def test_flag_set_after_last_arrival(self):
        trace = schedule([ParallelLoop("l", 7, BODY)], num_cpus=4)
        barrier = trace.barriers[0]
        assert barrier.flag_set_cycle > barrier.last_arrival

    def test_sync_refs_flagged(self):
        trace = schedule([ParallelLoop("l", 4, BODY)], num_cpus=2)
        sync_ops = {r.op for r in trace if r.is_sync}
        # Index F&A, barrier F&A (RMW), flag polls (READ), flag set (WRITE).
        assert sync_ops == {Op.RMW, Op.READ, Op.WRITE}

    def test_single_cpu_no_polling(self):
        trace = schedule([ParallelLoop("l", 3, BODY)], num_cpus=1)
        barrier = trace.barriers[0]
        assert barrier.first_poll_cycle is None
        assert barrier.interval_a == 0


class TestProgramOrder:
    def test_per_cpu_references_in_program_order(self):
        # Within one cpu, body refs of one iteration appear contiguously.
        trace = schedule(
            [ParallelLoop("l", 6, [(Op.READ, 0x100), (Op.WRITE, 0x110),
                                   (Op.READ, 0x120)])],
            num_cpus=2,
        )
        per_cpu = {0: [], 1: []}
        for r in trace:
            if not r.is_sync:
                per_cpu[r.cpu].append(r.address)
        for addresses in per_cpu.values():
            for i in range(0, len(addresses), 3):
                assert addresses[i : i + 3] == [0x100, 0x110, 0x120]

    def test_two_loops_ordered_by_barrier(self):
        first = ParallelLoop("a", 4, [(Op.READ, 0x100)])
        second = ParallelLoop("b", 4, [(Op.READ, 0x200)])
        trace = schedule([first, second], num_cpus=2)
        assert len(trace.barriers) == 2
        # No 0x200 reference may appear before the first flag is set.
        first_flag_set = trace.barriers[0].flag_set_cycle
        position_of_first_b = None
        for index, r in enumerate(trace):
            if not r.is_sync and r.address == 0x200:
                position_of_first_b = index
                break
        assert position_of_first_b is not None
        # Index in trace is not a cycle, but barrier 2 arrivals must all
        # be later than barrier 1's flag set.
        assert trace.barriers[1].first_arrival > first_flag_set


class TestSerialSection:
    def test_exactly_one_cpu_executes(self):
        trace = schedule(
            [SerialSection("s", [(Op.READ, 0x500)] * 5)], num_cpus=4
        )
        executors = {r.cpu for r in trace if not r.is_sync}
        assert len(executors) == 1

    def test_others_wait_at_barrier(self):
        trace = schedule(
            [SerialSection("s", [(Op.READ, 0x500)] * 20)], num_cpus=4
        )
        barrier = trace.barriers[0]
        assert len(barrier.arrivals) == 4
        # Waiters arrive long before the executor.
        assert barrier.arrival_span >= 19


class TestReplicateSection:
    def test_every_cpu_executes_own_body(self):
        section = ReplicateSection("r", lambda cpu: [(Op.READ, 0x1000 + 16 * cpu)])
        trace = schedule([section], num_cpus=3)
        addresses = sorted(r.address for r in trace if not r.is_sync)
        assert addresses == [0x1000, 0x1010, 0x1020]

    def test_no_barrier_inserted(self):
        section = ReplicateSection("r", lambda cpu: [(Op.READ, 0x1000)])
        trace = schedule([section], num_cpus=3)
        assert len(trace.barriers) == 0

    def test_empty_replicate_body_skipped(self):
        section = ReplicateSection("r", lambda cpu: [])
        trace = schedule([section, ParallelLoop("l", 2, BODY)], num_cpus=2)
        assert len(trace.barriers) == 1


class TestFetchAddSerialization:
    def test_loop_start_staggers_arrivals(self):
        # With identical bodies, the index F&A serializes processors:
        # one grant per cycle, so body starts are staggered.
        trace = schedule(
            [ParallelLoop("l", 8, [(Op.READ, 0x100)] * 50)], num_cpus=8
        )
        barrier = trace.barriers[0]
        assert barrier.arrival_span >= 7

    def test_rmw_grants_unique_per_cycle(self):
        # Granted F&As on one variable occupy distinct cycles, which we
        # observe through strictly increasing arrival cycles.
        trace = schedule([ParallelLoop("l", 4, BODY)], num_cpus=4)
        cycles = sorted(c for __, c in trace.barriers[0].arrivals)
        assert len(set(cycles)) == len(cycles)


class TestIntervalMeasurement:
    def test_interval_e_between_barriers(self):
        loops = [
            ParallelLoop("a", 4, [(Op.READ, 0x100)] * 30),
            ParallelLoop("b", 4, [(Op.READ, 0x200)] * 30),
        ]
        trace = schedule(loops, num_cpus=2)
        values = trace.interval_e_values()
        assert len(values) == 1
        assert values[0] > 0

    def test_arrival_offsets_start_at_zero(self):
        trace = schedule([ParallelLoop("l", 9, BODY)], num_cpus=4)
        offsets = trace.barriers[0].arrival_offsets()
        assert offsets[0] == 0
        assert offsets == sorted(offsets)

    def test_mean_intervals_empty_safe(self):
        trace = schedule([ReplicateSection("r", lambda cpu: [(Op.READ, 0)])], 2)
        assert trace.mean_interval_a() == 0.0
        assert trace.mean_interval_e() == 0.0


class TestSafety:
    def test_max_cycles_guard(self):
        program = make_program([ParallelLoop("l", 64, [(Op.READ, 0)] * 64)])
        scheduler = PostMortemScheduler(program, 8)
        with pytest.raises(RuntimeError):
            scheduler.run(max_cycles=10)

    def test_invalid_cpu_count(self):
        with pytest.raises(ValueError):
            PostMortemScheduler(make_program([]), 0)

    def test_sync_fraction_bounds(self):
        trace = schedule([ParallelLoop("l", 4, BODY)], num_cpus=2)
        assert 0.0 < trace.sync_fraction < 1.0
