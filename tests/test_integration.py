"""Integration tests: the paper's headline claims, end-to-end.

These run the actual experiment pipeline (at reduced repetitions /
scale where that does not change the claim) and assert the qualitative
results the paper reports — who wins, by roughly what factor, where the
crossovers fall.
"""

import pytest

from repro.analysis.experiments import run, scheduled_trace
from repro.barrier.models import model1_accesses, model2_accesses
from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff, VariableBackoff

REPS = 30


class TestClaimTrafficReductions:
    """'reductions of 20 percent to over 95 percent in synchronization
    traffic can be achieved at no extra cost' when N is small vs A."""

    def test_over_95_percent_at_a1000_n16(self):
        base = simulate_barrier(16, 1000, NoBackoff(), repetitions=REPS)
        b2 = simulate_barrier(16, 1000, ExponentialFlagBackoff(2), repetitions=REPS)
        assert b2.savings_vs(base) > 0.95

    def test_over_90_percent_at_a100_n16_base4(self):
        base = simulate_barrier(16, 100, NoBackoff(), repetitions=REPS)
        b4 = simulate_barrier(16, 100, ExponentialFlagBackoff(4), repetitions=REPS)
        assert b4.savings_vs(base) > 0.90

    def test_about_60_percent_at_a100_n64_base8(self):
        base = simulate_barrier(64, 100, NoBackoff(), repetitions=REPS)
        b8 = simulate_barrier(64, 100, ExponentialFlagBackoff(8), repetitions=REPS)
        assert 0.45 < b8.savings_vs(base) < 0.90

    def test_20_percent_when_n_large_vs_a(self):
        base = simulate_barrier(256, 0, NoBackoff(), repetitions=10)
        var = simulate_barrier(256, 0, VariableBackoff(), repetitions=10)
        assert 0.15 < var.savings_vs(base) < 0.25

    def test_savings_shrink_as_n_grows_at_a100(self):
        # "The proportional benefit due to backoff decreases as N
        # increases" (A=100: ~30% at N=512 with base 8).
        savings = {}
        for n in (16, 128, 512):
            base = simulate_barrier(n, 100, NoBackoff(), repetitions=10)
            b8 = simulate_barrier(n, 100, ExponentialFlagBackoff(8), repetitions=10)
            savings[n] = b8.savings_vs(base)
        assert savings[16] > savings[128] > savings[512]


class TestClaimWaitingTimeTradeoffs:
    """Figures 8-10: favorable binary tradeoff; base-8 blowup; the
    non-monotone waiting-time peak at A=1000."""

    def test_binary_backoff_favourable_tradeoff_at_n64_a1000(self):
        base = simulate_barrier(64, 1000, NoBackoff(), repetitions=REPS)
        b2 = simulate_barrier(64, 1000, ExponentialFlagBackoff(2), repetitions=REPS)
        assert b2.savings_vs(base) > 0.9  # "decreased ... by 97%"
        assert b2.waiting_increase_vs(base) < 0.35  # "only 16%"

    def test_base8_increases_waiting_over_250_percent(self):
        base = simulate_barrier(64, 1000, NoBackoff(), repetitions=REPS)
        b8 = simulate_barrier(64, 1000, ExponentialFlagBackoff(8), repetitions=REPS)
        assert b8.waiting_increase_vs(base) > 2.5  # paper: >350%

    def test_waiting_time_peaks_then_declines_at_a1000(self):
        # "the average waiting times per processor reach a maximum
        # around 64 processors and then actually decline".
        waits = {}
        for n in (16, 64, 512):
            b8 = simulate_barrier(
                n, 1000, ExponentialFlagBackoff(8), repetitions=15
            )
            waits[n] = b8.mean_waiting_time
        assert waits[64] > waits[16]
        assert waits[512] < waits[64]

    def test_a0_waiting_similar_across_policies(self):
        # Figure 8: "the waiting times for all the four curves are
        # similar" at A=0.
        base = simulate_barrier(64, 0, NoBackoff(), repetitions=10)
        b8 = simulate_barrier(64, 0, ExponentialFlagBackoff(8), repetitions=10)
        assert b8.mean_waiting_time == pytest.approx(
            base.mean_waiting_time, rel=0.25
        )


class TestClaimModelAccuracy:
    """Figure 4: Model 1 fits A << N, Model 2 fits A >> N."""

    def test_model1_fits_a0(self):
        for n in (32, 128, 512):
            sim = simulate_barrier(n, 0, NoBackoff(), repetitions=5)
            assert sim.mean_accesses == pytest.approx(
                model1_accesses(n), rel=0.05
            )

    def test_model2_fits_a1000_small_n(self):
        for n in (4, 16, 64):
            sim = simulate_barrier(n, 1000, NoBackoff(), repetitions=REPS)
            assert sim.mean_accesses == pytest.approx(
                model2_accesses(n, 1000), rel=0.08
            )

    def test_model2_underestimates_contention_large_n(self):
        # "When N is greater than 128, the model begins to
        # underestimate the contention" (A=100).
        sim = simulate_barrier(512, 100, NoBackoff(), repetitions=10)
        assert sim.mean_accesses > model2_accesses(512, 100)

    def test_a100_crossover_around_n32(self):
        # For N < 32, A=0 costs less than A=100; for large N the
        # ordering flips (contention relief from spread arrivals).
        small_a0 = simulate_barrier(8, 0, NoBackoff(), repetitions=REPS)
        small_a100 = simulate_barrier(8, 100, NoBackoff(), repetitions=REPS)
        assert small_a0.mean_accesses < small_a100.mean_accesses
        large_a0 = simulate_barrier(256, 0, NoBackoff(), repetitions=10)
        large_a100 = simulate_barrier(256, 100, NoBackoff(), repetitions=10)
        assert large_a100.mean_accesses < large_a0.mean_accesses


class TestClaimTraceDriven:
    """Section 2 and Table 3 claims on the trace substrate (scale 0.25,
    16 CPUs — small but structurally identical)."""

    SCALE = 0.25
    CPUS = 16

    def test_sync_invalidation_far_exceeds_data(self):
        result = run(
            "table1",
            scale=self.SCALE,
            num_cpus=self.CPUS,
            pointers=(2, 3),
            apps=("SIMPLE",),
        )
        for __, (data_pct, sync_pct) in result.data["SIMPLE"].items():
            assert sync_pct > 3 * data_pct

    def test_full_map_kills_sync_invalidations(self):
        result = run(
            "table1",
            scale=self.SCALE,
            num_cpus=self.CPUS,
            pointers=(2, self.CPUS),
            apps=("SIMPLE",),
        )
        limited = result.data["SIMPLE"][2][1]
        full = result.data["SIMPLE"][self.CPUS][1]
        assert full < limited / 4

    def test_uncached_sync_traffic_ordering(self):
        # FFT's share is far below SIMPLE's and WEATHER's (Table 2).
        result = run(
            "table2",
            scale=self.SCALE,
            num_cpus=self.CPUS,
            pointers=(2,),
            apps=("FFT", "SIMPLE", "WEATHER"),
        )
        fft = result.data["FFT"][2]
        simple = result.data["SIMPLE"][2]
        weather = result.data["WEATHER"][2]
        assert fft < simple
        assert fft < weather

    def test_figure1_small_invalidations_dominate(self):
        result = run("figure1", scale=self.SCALE, num_cpus=self.CPUS)
        assert result.data["at_most_3_pct"] > 90.0

    def test_fft_e_much_larger_than_a(self):
        trace = scheduled_trace("FFT", self.CPUS, self.SCALE)
        assert trace.mean_interval_e() > 5 * trace.mean_interval_a()

    def test_fft_traffic_backoff_recovers_most_of_base(self):
        result = run(
            "fft_traffic", scale=self.SCALE, num_cpus=self.CPUS, repetitions=10
        )
        base = result.data["base_rate"]
        with_barriers = result.data["with_barriers"]
        with_base8 = result.data["with_base8"]
        assert with_barriers > base
        assert base <= with_base8 < with_barriers

    def test_barrier_model_predicts_measured_traffic(self):
        # Section 7.1 validation: model vs trace measurement close.
        result = run(
            "fft_traffic", scale=self.SCALE, num_cpus=self.CPUS, repetitions=10
        )
        assert result.data["with_barriers"] == pytest.approx(
            result.data["measured"], rel=0.5
        )


class TestClaimHardwareComparison:
    """Section 5.1: with favourable A, backoff rivals hardware schemes
    at small N and loses badly at large N."""

    def test_small_n_comparable(self):
        result = run("hardware", repetitions=REPS, n_values=(4, 8))
        for n in (4, 8):
            assert result.data["backoff"][n] < 3 * result.data["full-map directory"][n]

    def test_large_n_much_worse(self):
        result = run(
            "hardware", repetitions=10, n_values=(128,), a_values=(0, 100, 1000)
        )
        assert result.data["backoff"][128] > 10 * result.data["Hoshino gate"][128]
