"""Tests for the remaining CLI surface (report command, parser, errors)."""

import os

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        actions = [
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        commands = set(actions[0].choices)
        assert commands == {
            "list", "experiment", "barrier", "trace", "report", "advise",
            "verify", "profile", "faults", "run", "check", "chaos",
            "scenario", "serve",
        }

    def test_barrier_defaults(self):
        args = build_parser().parse_args(["barrier"])
        assert args.n == 64
        assert args.interval_a == 1000
        assert args.policy == "exponential"


class TestUnknownExperimentErrors:
    """Unknown ids exit 2 with a did-you-mean, on every subcommand.

    Ids are validated against the registry, not baked into the parser
    as argparse ``choices``, so every path reports the same error.
    """

    @pytest.mark.parametrize("argv", [
        ["experiment", "figure99", "--describe"],
        ["experiment", "figure99"],
        ["run", "figure99"],
        ["profile", "figure99"],
        ["faults", "figure99"],
        ["check", "--ids", "figure99"],
    ])
    def test_unknown_id_exits_2_with_suggestion(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'figure99'" in err
        assert "did you mean" in err
        assert "figure9" in err

    def test_close_match_suggested_first(self, capsys):
        main(["run", "tabel1"])
        assert "'table1'" in capsys.readouterr().err


class TestSeedValidation:
    """``--seed`` is validated at parse time on every subcommand."""

    @pytest.mark.parametrize("command", ["barrier", "verify", "advise"])
    def test_non_integer_seed_rejected(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--seed", "not-a-seed"])
        assert "seed must be an integer" in capsys.readouterr().err

    def test_negative_seed_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["barrier", "--seed", "-1"])
        assert "seed must be in [0, 2**32)" in capsys.readouterr().err

    def test_too_large_seed_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "figure5", "--seed", str(2**32)])
        assert "seed must be in [0, 2**32)" in capsys.readouterr().err

    def test_valid_seed_accepted(self):
        args = build_parser().parse_args(["barrier", "--seed", "123"])
        assert args.seed == 123

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults", "figure5"])
        assert args.plan == "none"
        assert args.seed == 0
        assert args.max_retries == 2
        assert args.max_points is None


class TestReportCommand:
    def test_report_writes_files(self, tmp_path, monkeypatch):
        # Patch the registry to two fast experiments so the test stays
        # quick while exercising the real command path.
        import repro.cli.report as report_cmd
        from repro.analysis.experiments import ExperimentResult

        calls = []

        def fake_run(experiment_id, **kwargs):
            calls.append(experiment_id)
            return ExperimentResult(experiment_id, "t", "body", {"x": 1})

        monkeypatch.setattr(
            report_cmd, "EXPERIMENTS", {"alpha": None, "beta": None}
        )
        monkeypatch.setattr(report_cmd, "run_experiment", fake_run)
        out = tmp_path / "reports"
        code = main(["report", "--output", str(out)])
        assert code == 0
        assert calls == ["alpha", "beta"]
        assert sorted(os.listdir(out)) == ["alpha.txt", "beta.txt"]
        assert "body" in (out / "alpha.txt").read_text()

    def test_report_counts_failures(self, tmp_path, monkeypatch):
        import repro.cli.report as report_cmd

        def exploding_run(experiment_id, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(report_cmd, "EXPERIMENTS", {"alpha": None})
        monkeypatch.setattr(report_cmd, "run_experiment", exploding_run)
        code = main(["report", "--output", str(tmp_path / "r")])
        assert code == 1


class TestProfileCommand:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "prof"
        code = main([
            "profile", "figure4", "--output", str(out), "--repetitions", "1",
        ])
        assert code == 0
        assert (out / "manifest.json").is_file()
        assert (out / "events.jsonl").is_file()
        assert (out / "summary.txt").is_file()
        printed = capsys.readouterr().out
        assert "barrier.accesses" in printed
        assert "manifest" in printed

    def test_profile_manifest_records_config(self, tmp_path):
        import json

        out = tmp_path / "prof"
        main(["profile", "figure5", "--output", str(out), "--repetitions", "1"])
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["experiment_id"] == "figure5"
        assert manifest["config"] == {"repetitions": 1}
        assert manifest["events_emitted"] > 0
        assert manifest["counters"]["barrier.episodes"] > 0
        assert "deterministic_digest" in manifest

    def test_profile_unknown_experiment_rejected(self, capsys):
        assert main(["profile", "figure99"]) == 2
        assert "did you mean" in capsys.readouterr().err


class TestCheckCommand:
    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.suite is None
        assert args.budget == "default"
        assert args.seed == 0
        assert args.ids is None
        assert args.output == "checks"

    def test_invariants_suite_passes_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        import json

        out = tmp_path / "checks"
        code = main([
            "check", "--suite", "invariants", "--budget", "small",
            "--seed", "0", "--output", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "PASS: " in printed
        report = json.loads((out / "report.json").read_text())
        assert report["seed"] == 0
        assert report["budget"] == "small"
        assert report["suites"] == ["invariants"]
        assert all(o["passed"] for o in report["outcomes"])
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["experiment_id"] == "check"

    def test_bad_budget_exits_2(self, capsys):
        assert main(["check", "--budget", "bogus"]) == 2
        assert "unknown budget" in capsys.readouterr().err

    def test_bad_suite_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--suite", "everything"])


class TestPolicyBuilder:
    def test_unknown_policy(self):
        from repro.cli.common import build_policy

        with pytest.raises(ValueError):
            build_policy("quadratic", 2, 1)

    def test_linear_policy(self):
        from repro.cli.common import build_policy

        policy = build_policy("linear", 2, 5)
        assert policy.flag_wait(2) == 10


class TestSupervisorFlags:
    """--retries/--deadline/--checkpoint-dir/--resume on run/profile."""

    def test_parser_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["run", "figure5", "--retries", "2", "--deadline", "30",
             "--retry-policy", "linear:step=2"]
        )
        assert args.retries == 2
        assert args.deadline == 30.0
        assert args.retry_policy == "linear:step=2"

    def test_bad_retry_policy_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "figure5", "--retry-policy", "polynomial"]
            )
        assert "retry policy" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["run", "figure5", "--resume",
                     "-p", "n_values=2", "--repetitions", "1"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_run_with_retries_alone_arms_the_engine(self, capsys):
        assert main(
            ["run", "figure5", "--quiet", "--retries", "1",
             "-p", "n_values=2,4", "--repetitions", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "execution" in out  # supervision armed the exec engine
        assert "results digest" in out

    def test_run_checkpoint_then_resume_replays_points(
        self, tmp_path, capsys
    ):
        argv = [
            "run", "figure5", "--quiet",
            "-p", "n_values=2,4", "--repetitions", "1",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # The digest line is identical: resume never changes a result.
        digest = [l for l in first.splitlines() if "results digest" in l]
        assert digest == [
            l for l in second.splitlines() if "results digest" in l
        ]

    def test_faults_accepts_retry_policy_aliases(self):
        args = build_parser().parse_args(
            ["faults", "figure5", "--deadline", "10", "--retries", "3",
             "--retry-policy", "none"]
        )
        assert args.timeout == 10.0
        assert args.max_retries == 3
        assert args.retry_policy == "none"


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos", "figure5"])
        assert args.kill == 1
        assert args.hang == 0
        assert args.corrupt_cache and args.truncate_checkpoint
        assert args.jobs is None  # command default of 4 applied later

    def test_hang_without_deadline_rejected(self, capsys):
        assert main(["chaos", "figure5", "--hang", "1"]) == 2
        assert "deadline" in capsys.readouterr().err

    def test_chaos_smoke_recovers_bit_identically(self, tmp_path, capsys):
        import json
        import warnings

        counters_path = tmp_path / "counters.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            code = main([
                "chaos", "figure5", "--jobs", "2", "--seed", "3",
                "-p", "n_values=2,4", "--repetitions", "1",
                "--counters", str(counters_path),
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "digests identical" in out
        counters = json.loads(counters_path.read_text())
        assert counters["ok"] and counters["digests_match"]
        assert counters["chaos"]["worker_deaths"] >= 1
        assert counters["recovery"]["cache_quarantined"] >= 1


class TestKeyboardInterruptHandling:
    def test_interrupt_exits_130_and_releases_pools(
        self, monkeypatch, capsys
    ):
        import repro.cli.listing as listing_cmd
        from repro.exec import engine

        engine._get_pool(2)  # a live pool that must not leak

        def interrupted(_args):
            raise KeyboardInterrupt()

        monkeypatch.setattr(listing_cmd, "cmd", interrupted)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err
        assert engine._POOLS == {}
