"""Registry output parity against pre-refactor goldens, plus spec API.

``tests/goldens/registry_parity.json`` holds, for every experiment id,
the sha256 of the canonicalized ``result.data`` and of ``str(result)``
captured from the monolithic seed runners at the miniature
``FAST_KWARGS`` configurations.  The registry must reproduce both
digests byte-for-byte — serially and through the exec engine with
``jobs=2`` — or the refactor changed science output.
"""

import hashlib
import json
import os

import pytest

from repro.exec.context import ExecConfig, execution, get_stats, reset_stats
from repro.registry import (
    ParameterError,
    all_specs,
    experiment_ids,
    get_spec,
    run,
)
from tests.test_experiments import FAST_KWARGS

GOLDENS_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "registry_parity.json"
)

with open(GOLDENS_PATH, encoding="utf-8") as _handle:
    GOLDENS = json.load(_handle)


def _stringify(value):
    if isinstance(value, dict):
        return {str(k): _stringify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_stringify(v) for v in value]
    return value


def data_digest(data) -> str:
    canonical = json.dumps(_stringify(data), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def text_digest(result) -> str:
    return hashlib.sha256(str(result).encode()).hexdigest()


class TestGoldensCoverEverything:
    def test_every_experiment_has_a_golden(self):
        assert set(GOLDENS) == set(experiment_ids())

    def test_every_experiment_has_fast_kwargs(self):
        assert set(FAST_KWARGS) == set(experiment_ids())


@pytest.mark.parametrize("experiment_id", sorted(GOLDENS))
class TestSeedParity:
    def test_serial_matches_golden(self, experiment_id):
        result = run(experiment_id, **FAST_KWARGS[experiment_id])
        assert data_digest(result.data) == GOLDENS[experiment_id]["data_sha256"]
        assert text_digest(result) == GOLDENS[experiment_id]["text_sha256"]

    def test_jobs2_matches_golden(self, experiment_id):
        with execution(ExecConfig(jobs=2, force_engine=True)):
            result = run(experiment_id, **FAST_KWARGS[experiment_id])
        assert data_digest(result.data) == GOLDENS[experiment_id]["data_sha256"]
        assert text_digest(result) == GOLDENS[experiment_id]["text_sha256"]


class TestCachedParity:
    def test_cold_then_warm_cache_identical(self, tmp_path):
        config = ExecConfig(jobs=1, cache=True, cache_dir=str(tmp_path),
                            force_engine=True)
        reset_stats()
        with execution(config):
            cold = run("figure5", **FAST_KWARGS["figure5"])
        stats = get_stats()
        assert stats.cache_stores == len(FAST_KWARGS["figure5"]["n_values"])
        reset_stats()
        with execution(config):
            warm = run("figure5", **FAST_KWARGS["figure5"])
        stats = get_stats()
        assert stats.cache_hits == len(FAST_KWARGS["figure5"]["n_values"])
        assert stats.cache_misses == 0
        assert data_digest(cold.data) == data_digest(warm.data)
        assert str(cold) == str(warm)
        assert data_digest(cold.data) == GOLDENS["figure5"]["data_sha256"]


class TestSpecSchema:
    def test_unknown_parameter_lists_valid_names(self):
        with pytest.raises(ParameterError) as excinfo:
            run("figure5", bogus=3)
        message = str(excinfo.value)
        assert "bogus" in message
        assert "n_values" in message and "repetitions" in message

    def test_mistyped_parameter_names_kind_and_example(self):
        spec = get_spec("figure5")
        with pytest.raises(ParameterError) as excinfo:
            spec.get_param("n_values").parse("abc")
        message = str(excinfo.value)
        assert "ints" in message and "abc" in message

    def test_pairs_parsing(self):
        spec = get_spec("determinism")
        assert spec.get_param("points").parse("16:1000,64:1000") == (
            (16, 1000),
            (64, 1000),
        )

    def test_describe_mentions_every_parameter(self):
        for spec in all_specs():
            description = spec.describe()
            assert spec.id in description
            for param in spec.params:
                assert param.name in description

    def test_every_spec_has_section_and_summary(self):
        for spec in all_specs():
            assert spec.section.strip()
            assert spec.summary.strip()

    def test_seed_param_present_wherever_stochastic(self):
        # Experiments that accept repetitions are simulation-driven and
        # must also declare the seed that makes them reproducible.
        for spec in all_specs():
            names = spec.param_names()
            if "repetitions" in names:
                assert "seed" in names, spec.id


class TestExperimentPoints:
    def test_axis_decomposition_keys(self):
        from repro.registry import experiment_points

        points = experiment_points("figure5", n_values=(2, 8))
        assert list(points) == ["N=2", "N=8"]
        assert points["N=2"] == {"n_values": (2,)}

    def test_no_axis_single_point(self):
        from repro.registry import experiment_points

        points = experiment_points("fft_traffic", scale=0.1)
        assert list(points) == ["all"]
        assert points["all"] == {"scale": 0.1}

    def test_empty_axis_raises(self):
        from repro.registry import experiment_points

        with pytest.raises(ValueError):
            experiment_points("figure5", n_values=())

    def test_unknown_experiment_raises_keyerror_listing_known(self):
        from repro.registry import experiment_points

        with pytest.raises(KeyError) as excinfo:
            experiment_points("figure99")
        assert "figure5" in str(excinfo.value)
