"""Tests for the snoopy-bus substrate and the coherent barrier simulator."""

import numpy as np
import pytest

from repro.barrier.coherent import (
    CoherentBarrierSimulator,
    simulate_coherent_barrier,
)
from repro.core.backoff import ExponentialFlagBackoff
from repro.memory.snoopy import SnoopyConfig, SnoopySimulator
from repro.trace.record import Op, TraceRecord


def rec(cpu, op, address, is_sync=False):
    return TraceRecord(cpu=cpu, op=op, address=address, is_sync=is_sync)


def snoopy(num_cpus=4, protocol="invalidate", fiw=False, cache_bytes=1024):
    return SnoopySimulator(
        SnoopyConfig(
            num_cpus=num_cpus,
            protocol=protocol,
            fetch_intent_write=fiw,
            cache_bytes=cache_bytes,
            block_bytes=16,
        )
    )


class TestSnoopyConfig:
    def test_invalid_protocol(self):
        with pytest.raises(ValueError):
            SnoopyConfig(protocol="dragonfly")

    def test_fiw_only_for_invalidate(self):
        with pytest.raises(ValueError):
            SnoopyConfig(protocol="update", fetch_intent_write=True)

    def test_invalid_cpus(self):
        with pytest.raises(ValueError):
            SnoopyConfig(num_cpus=0)


class TestInvalidateProtocol:
    def test_read_miss_one_transaction(self):
        sim = snoopy()
        sim.process(rec(0, Op.READ, 0x100))
        assert sim.stats.bus_transactions == 1
        assert sim.stats.reads_on_bus == 1

    def test_read_hit_free(self):
        sim = snoopy()
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(0, Op.READ, 0x104))
        assert sim.stats.bus_transactions == 1
        assert sim.stats.hits == 1

    def test_widely_shared_read_costs_one_each(self):
        # The Section 2.1 point: sharing width does not matter on a bus.
        sim = snoopy()
        for cpu in range(4):
            sim.process(rec(cpu, Op.READ, 0x100))
        assert sim.stats.bus_transactions == 4

    def test_write_hit_shared_single_broadcast(self):
        sim = snoopy()
        for cpu in range(4):
            sim.process(rec(cpu, Op.READ, 0x100))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.WRITE, 0x100))
        # One upgrade regardless of three remote copies.
        assert sim.stats.bus_transactions == before + 1
        assert sim.stats.copies_invalidated == 3
        assert not sim.caches[1].contains(0x10)

    def test_write_miss_naive_costs_two(self):
        sim = snoopy()
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.bus_transactions == 2  # read + upgrade

    def test_write_miss_fiw_costs_one(self):
        sim = snoopy(fiw=True)
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.bus_transactions == 1  # read-exclusive

    def test_dirty_remote_copy_flushes_on_read(self):
        sim = snoopy(fiw=True)
        sim.process(rec(0, Op.WRITE, 0x100))
        before = sim.stats.bus_transactions
        sim.process(rec(1, Op.READ, 0x100))
        assert sim.stats.flushes == 1
        assert sim.stats.bus_transactions == before + 2
        assert not sim.caches[0].is_dirty(0x10)

    def test_rewrite_modified_silent(self):
        sim = snoopy(fiw=True)
        sim.process(rec(0, Op.WRITE, 0x100))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.bus_transactions == before

    def test_clean_exclusive_write_silent(self):
        sim = snoopy()
        sim.process(rec(0, Op.READ, 0x100))
        before = sim.stats.bus_transactions
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.bus_transactions == before
        assert sim.caches[0].is_dirty(0x10)

    def test_invariants(self):
        sim = snoopy()
        for cpu, op, addr in [
            (0, Op.WRITE, 0x100),
            (1, Op.READ, 0x100),
            (2, Op.WRITE, 0x100),
            (3, Op.READ, 0x200),
            (2, Op.READ, 0x200),
        ]:
            sim.process(rec(cpu, op, addr))
        sim.check_invariants()

    def test_dirty_eviction_writeback(self):
        sim = snoopy(cache_bytes=4 * 16)
        sim.process(rec(0, Op.WRITE, 0x000))
        before = sim.stats.writebacks
        sim.process(rec(0, Op.READ, 0x040))  # conflicts, evicts dirty
        assert sim.stats.writebacks == before + 1


class TestUpdateProtocol:
    def test_write_hit_shared_updates_not_invalidates(self):
        sim = snoopy(protocol="update")
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(1, Op.READ, 0x100))
        sim.process(rec(0, Op.WRITE, 0x100))
        assert sim.stats.updates == 1
        assert sim.stats.copies_invalidated == 0
        assert sim.caches[1].contains(0x10)  # still cached

    def test_readers_hit_after_update(self):
        sim = snoopy(protocol="update")
        sim.process(rec(0, Op.READ, 0x100))
        sim.process(rec(1, Op.READ, 0x100))
        sim.process(rec(0, Op.WRITE, 0x100))
        before = sim.stats.bus_transactions
        sim.process(rec(1, Op.READ, 0x100))  # hit, no re-fetch
        assert sim.stats.bus_transactions == before

    def test_sync_transactions_attributed(self):
        sim = snoopy(protocol="update")
        sim.process(rec(0, Op.READ, 0x100, is_sync=True))
        sim.process(rec(1, Op.READ, 0x200))
        assert sim.stats.sync_bus_transactions == 1
        assert sim.stats.bus_transactions == 2


class TestCoherentBarrier:
    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            CoherentBarrierSimulator(4, scheme="ring-barrier")
        with pytest.raises(ValueError):
            CoherentBarrierSimulator(0)

    def test_single_processor(self):
        stats = simulate_coherent_barrier(1, "snoopy-invalidate", repetitions=2)
        assert stats.mean > 0

    @pytest.mark.parametrize("scheme", CoherentBarrierSimulator.SCHEMES)
    def test_all_schemes_complete(self, scheme):
        stats = simulate_coherent_barrier(
            8, scheme, interval_a=20, repetitions=3
        )
        assert stats.mean > 0

    def test_paper_ordering(self):
        values = {
            scheme: simulate_coherent_barrier(
                16, scheme, interval_a=30, repetitions=3
            ).mean
            for scheme in (
                "snoopy-update",
                "snoopy-invalidate-fiw",
                "snoopy-invalidate",
                "uncached",
            )
        }
        assert values["snoopy-update"] < values["snoopy-invalidate"]
        assert values["snoopy-invalidate-fiw"] < values["snoopy-invalidate"]
        assert values["snoopy-invalidate"] < values["uncached"] / 3

    def test_cached_polls_are_free(self):
        # Widening A adds polls; cached schemes' traffic must not grow
        # with it, uncached traffic must.
        cached_small = simulate_coherent_barrier(
            16, "snoopy-invalidate", interval_a=0, repetitions=3
        )
        cached_large = simulate_coherent_barrier(
            16, "snoopy-invalidate", interval_a=300, repetitions=3
        )
        assert cached_large.mean == pytest.approx(cached_small.mean, rel=0.1)
        uncached_small = simulate_coherent_barrier(
            16, "uncached", interval_a=0, repetitions=3
        )
        uncached_large = simulate_coherent_barrier(
            16, "uncached", interval_a=300, repetitions=3
        )
        assert uncached_large.mean > uncached_small.mean * 1.5

    def test_backoff_tames_uncached(self):
        plain = simulate_coherent_barrier(
            16, "uncached", interval_a=200, repetitions=3
        )
        backoff = simulate_coherent_barrier(
            16,
            "uncached",
            interval_a=200,
            policy=ExponentialFlagBackoff(base=2),
            repetitions=3,
        )
        assert backoff.mean < plain.mean / 3

    def test_directory_pointer_limit_increases_traffic(self):
        full = simulate_coherent_barrier(
            16, "directory", interval_a=30, repetitions=3
        )
        limited = simulate_coherent_barrier(
            16, "directory", interval_a=30, num_pointers=2, repetitions=3
        )
        assert limited.mean > full.mean

    def test_reproducible(self):
        a = simulate_coherent_barrier(8, "uncached", interval_a=50,
                                      repetitions=3, seed=2)
        b = simulate_coherent_barrier(8, "uncached", interval_a=50,
                                      repetitions=3, seed=2)
        assert a.mean == b.mean
