"""Tests for the experiment registry (miniature configurations).

Trace-driven experiments run at scale 0.1 and barrier experiments at a
handful of repetitions: the goal here is that every registered
experiment runs end-to-end, produces a printable report, and exposes
the data its benchmark asserts on.  Paper-fidelity shape checks live in
test_integration.py.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run,
    scheduled_trace,
)

SMALL_N = (2, 8, 32)

#: Miniature kwargs per experiment.
FAST_KWARGS = {
    "table1": dict(scale=0.1, num_cpus=16, pointers=(2, 16), apps=("FFT",)),
    "table2": dict(scale=0.1, num_cpus=16, pointers=(2,), apps=("SIMPLE",)),
    "table3": dict(scale=0.1, cpu_counts=(8,), apps=("FFT", "WEATHER")),
    "figure1": dict(scale=0.1, num_cpus=16),
    "figure3": dict(scale=0.1, num_cpus=8, apps=("SIMPLE",), bins=5),
    "figure4": dict(repetitions=3, n_values=SMALL_N, a_values=(0, 100)),
    "figure5": dict(repetitions=3, n_values=SMALL_N),
    "figure6": dict(repetitions=3, n_values=SMALL_N),
    "figure7": dict(repetitions=3, n_values=SMALL_N),
    "figure8": dict(repetitions=3, n_values=SMALL_N),
    "figure9": dict(repetitions=3, n_values=SMALL_N),
    "figure10": dict(repetitions=3, n_values=SMALL_N),
    "hardware": dict(repetitions=3, n_values=(4, 16), a_values=(0, 100)),
    "fft_traffic": dict(scale=0.1, num_cpus=16, repetitions=3),
    "resource": dict(repetitions=3, n_values=(4, 8)),
    "netbackoff": dict(num_ports=16, hot_fractions=(0.0, 0.2), horizon=3_000),
    "combining": dict(repetitions=3, n_values=(16,), a_values=(0,), degrees=(4,)),
    "queueing": dict(repetitions=3, num_processors=16, a_values=(0, 1000)),
    "determinism": dict(repetitions=3, points=((8, 200),)),
    "tree_coherence": dict(scale=0.1, num_cpus=16, num_pointers=4, degrees=(3,)),
    "validation": dict(scale=0.1, num_cpus=8, repetitions=3, apps=("WEATHER",)),
    "application": dict(repetitions=2, num_processors=8, work_interval=200, rounds=3),
    "coupling": dict(repetitions=3, num_processors=16),
    "schedules": dict(repetitions=3, num_processors=16, a_values=(100, 1000)),
    "tree_saturation": dict(num_ports=16, hot_fractions=(0.0, 0.1), horizon=800),
    "coherent_barrier": dict(num_processors=8, interval_a=20, repetitions=2),
    "scale1024": dict(
        repetitions=2, n_values=(8, 16), interval_a=50, probe_horizon=120
    ),
    "bus_vs_directory": dict(scale=0.1, num_cpus=8, pointers=(2,)),
}


class TestRegistry:
    def test_all_experiments_have_fast_kwargs(self):
        assert set(FAST_KWARGS) == set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run("figure99")

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_experiment_runs_and_reports(self, experiment_id):
        result = run(experiment_id, **FAST_KWARGS[experiment_id])
        assert isinstance(result, ExperimentResult)
        assert result.text.strip()
        assert result.data
        assert experiment_id in str(result)


class TestTraceCache:
    def test_same_key_returns_same_object(self):
        a = scheduled_trace("FFT", 8, 0.1)
        b = scheduled_trace("FFT", 8, 0.1)
        assert a is b

    def test_different_scale_differs(self):
        a = scheduled_trace("FFT", 8, 0.1)
        b = scheduled_trace("FFT", 8, 0.05)
        assert a is not b


class TestExperimentData:
    def test_table1_sync_exceeds_data_invalidations(self):
        result = run("table1", **FAST_KWARGS["table1"])
        data = result.data["FFT"]
        for pointers, (data_pct, sync_pct) in data.items():
            if pointers < 16:
                assert sync_pct > data_pct

    def test_figure4_model1_matches_a0_sim(self):
        result = run("figure4", repetitions=5, n_values=(32,), a_values=(0,))
        sim = result.data["sim_A0"][32]
        model = result.data["model1"][32]
        assert sim == pytest.approx(model, abs=3)

    def test_figure7_backoff_beats_baseline(self):
        result = run("figure7", repetitions=5, n_values=(16,))
        baseline = result.data["Without Backoff"][16]
        b2 = result.data["Base 2 Backoff on Barrier Flag"][16]
        assert b2 < baseline / 5

    def test_queueing_reports_three_schemes(self):
        result = run("queueing", **FAST_KWARGS["queueing"])
        assert set(result.data) == {"spin-b2", "block", "hybrid"}
