"""Tests for the queueing (spin vs block) and resource simulators."""

import pytest

from repro.barrier.queueing import (
    simulate_blocking_barrier,
    simulate_threshold_barrier,
)
from repro.barrier.resource import ResourceSimulator, simulate_resource
from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.core.locks import BackoffLock, TestAndSetLock, TestAndTestAndSetLock


class TestBlockingBarrier:
    def test_blocking_accesses_independent_of_a_once_spread(self):
        # Sleepers never poll: once arrivals are spread enough that the
        # barrier-variable F&As stop contending, accesses are flat in A.
        medium = simulate_blocking_barrier(32, 1000, repetitions=5)
        large = simulate_blocking_barrier(32, 10_000, repetitions=5)
        assert medium.mean_accesses == pytest.approx(large.mean_accesses, rel=0.05)

    def test_blocking_cheaper_accesses_than_spinning(self):
        spin = simulate_barrier(64, 1000, NoBackoff(), repetitions=5)
        block = simulate_blocking_barrier(64, 1000, repetitions=5)
        assert block.mean_accesses < spin.mean_accesses / 10

    def test_blocking_pays_overhead_at_small_a(self):
        spin = simulate_barrier(64, 0, ExponentialFlagBackoff(2), repetitions=5)
        block = simulate_blocking_barrier(
            64, 0, enqueue_overhead=500, wakeup_overhead=500, repetitions=5
        )
        assert block.mean_waiting_time > spin.mean_waiting_time

    def test_blocking_wins_waiting_at_large_a(self):
        spin = simulate_barrier(64, 50_000, ExponentialFlagBackoff(8), repetitions=5)
        block = simulate_blocking_barrier(64, 50_000, repetitions=5)
        assert block.mean_waiting_time < spin.mean_waiting_time

    def test_all_but_last_queue(self):
        aggregate = simulate_blocking_barrier(16, 100, repetitions=5)
        assert aggregate.queued.mean == pytest.approx(15.0)


class TestThresholdHybrid:
    def test_never_queues_at_a0(self):
        # Arrivals are simultaneous: the backoff never crosses the
        # threshold before the flag is set.
        aggregate = simulate_threshold_barrier(
            32, 0, ExponentialFlagBackoff(2), threshold=512, repetitions=5
        )
        assert aggregate.queued.mean == 0.0

    def test_queues_at_huge_a(self):
        aggregate = simulate_threshold_barrier(
            32, 50_000, ExponentialFlagBackoff(2), threshold=256, repetitions=5
        )
        assert aggregate.queued.mean > 16

    def test_tracks_best_waiting_time(self):
        # The hybrid should be within 25% of the better of spin/block
        # at both extremes.
        for interval_a in (0, 20_000):
            spin = simulate_barrier(
                32, interval_a, ExponentialFlagBackoff(2), repetitions=5
            )
            block = simulate_blocking_barrier(32, interval_a, repetitions=5)
            hybrid = simulate_threshold_barrier(
                32,
                interval_a,
                ExponentialFlagBackoff(2),
                threshold=256,
                repetitions=5,
            )
            best = min(spin.mean_waiting_time, block.mean_waiting_time)
            assert hybrid.mean_waiting_time <= best * 1.25

    def test_reproducible(self):
        a = simulate_threshold_barrier(
            16, 1000, ExponentialFlagBackoff(2), threshold=64, repetitions=3, seed=4
        )
        b = simulate_threshold_barrier(
            16, 1000, ExponentialFlagBackoff(2), threshold=64, repetitions=3, seed=4
        )
        assert a.mean_accesses == b.mean_accesses


class TestResourceSimulator:
    def test_every_processor_acquires(self):
        import numpy as np

        simulator = ResourceSimulator(8, TestAndSetLock(), hold_time=4)
        result = simulator.run_once(np.random.default_rng(0))
        assert len(result.finish_times) == 8
        assert all(t > 0 for t in result.finish_times)

    def test_makespan_at_least_serial_hold_time(self):
        # 8 processors x hold 4 cycles: the resource alone needs 32.
        aggregate = simulate_resource(8, TestAndSetLock(), hold_time=4, repetitions=3)
        assert aggregate.mean_makespan >= 32

    def test_backoff_lock_fewer_accesses_than_tas(self):
        tas = simulate_resource(32, TestAndSetLock(), hold_time=8, repetitions=5)
        backoff = simulate_resource(
            32, BackoffLock(hold_time=8), hold_time=8, repetitions=5
        )
        assert backoff.mean_accesses < tas.mean_accesses / 3

    def test_backoff_lock_does_not_hurt_makespan_much(self):
        tas = simulate_resource(32, TestAndSetLock(), hold_time=8, repetitions=5)
        backoff = simulate_resource(
            32, BackoffLock(hold_time=8), hold_time=8, repetitions=5
        )
        assert backoff.mean_makespan <= tas.mean_makespan * 1.25

    def test_multiple_acquisitions(self):
        aggregate = simulate_resource(
            4, TestAndSetLock(), hold_time=4, acquisitions=3, repetitions=3
        )
        # 4 procs x 3 acquisitions x 4 hold cycles = 48 serial floor.
        assert aggregate.mean_makespan >= 48

    def test_ttas_behaves_like_tas_in_uncached_model(self):
        tas = simulate_resource(16, TestAndSetLock(), hold_time=8, repetitions=3)
        ttas = simulate_resource(
            16, TestAndTestAndSetLock(), hold_time=8, repetitions=3
        )
        assert ttas.mean_accesses == pytest.approx(tas.mean_accesses, rel=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ResourceSimulator(0, TestAndSetLock())
        with pytest.raises(ValueError):
            ResourceSimulator(4, TestAndSetLock(), hold_time=0)
        with pytest.raises(ValueError):
            ResourceSimulator(4, TestAndSetLock(), acquisitions=0)
