"""Tests for the memory-module contention model.

These pin down the paper's counting convention: a request presented at
``t`` and granted at ``g`` made ``g - t + 1`` network accesses (every
denied cycle counts).
"""

import pytest

from repro.network.model import NetworkModel
from repro.network.module import MemoryModule


class TestMemoryModule:
    def test_uncontended_access_costs_one(self):
        module = MemoryModule()
        grant, accesses = module.request(5)
        assert grant == 5
        assert accesses == 1

    def test_one_grant_per_cycle(self):
        module = MemoryModule()
        g0, __ = module.request(0)
        g1, __ = module.request(0)
        g2, __ = module.request(0)
        assert (g0, g1, g2) == (0, 1, 2)

    def test_denied_cycles_count_as_accesses(self):
        module = MemoryModule()
        module.request(0)
        module.request(0)
        __, accesses = module.request(0)  # granted at 2, denied at 0 and 1
        assert accesses == 3

    def test_simultaneous_burst_average_cost(self):
        # N simultaneous requests cost 1..N accesses: average (N+1)/2,
        # the paper's "N/2 references to get at the barrier variable".
        module = MemoryModule()
        n = 32
        costs = [module.request(0)[1] for __ in range(n)]
        assert costs == list(range(1, n + 1))

    def test_idle_gap_resets_contention(self):
        module = MemoryModule()
        module.request(0)
        grant, accesses = module.request(10)
        assert grant == 10
        assert accesses == 1

    def test_requests_must_be_time_ordered(self):
        module = MemoryModule()
        module.request(5)
        with pytest.raises(ValueError):
            module.request(4)

    def test_equal_ready_times_allowed(self):
        module = MemoryModule()
        module.request(5)
        grant, __ = module.request(5)
        assert grant == 6

    def test_negative_ready_time_rejected(self):
        with pytest.raises(ValueError):
            MemoryModule().request(-1)

    def test_counters(self):
        module = MemoryModule()
        module.request(0)
        module.request(0)
        assert module.total_grants == 2
        assert module.total_accesses == 3  # 1 + 2
        assert module.contention_accesses == 1

    def test_peek_does_not_mutate(self):
        module = MemoryModule()
        module.request(0)
        assert module.peek_grant_time(0) == 1
        assert module.peek_grant_time(0) == 1
        grant, __ = module.request(0)
        assert grant == 1

    def test_reset(self):
        module = MemoryModule()
        module.request(3)
        module.reset()
        assert module.total_accesses == 0
        grant, __ = module.request(0)
        assert grant == 0

    def test_utilisation(self):
        module = MemoryModule()
        for __ in range(5):
            module.request(0)
        assert module.utilisation(10) == pytest.approx(0.5)
        assert module.utilisation(0) == 0.0

    def test_utilisation_zero_horizon_with_grants(self):
        # horizon=0 must not divide by zero even after real traffic.
        module = MemoryModule()
        module.request(0)
        module.request(0)
        assert module.utilisation(0) == 0.0

    def test_back_to_back_same_cycle_grants_keep_order(self):
        # Many requests presented in the same cycle are granted in
        # strictly increasing consecutive cycles, FIFO by presentation.
        module = MemoryModule()
        grants = [module.request(7)[0] for __ in range(4)]
        assert grants == [7, 8, 9, 10]
        assert module.total_grants == 4


class TestMemoryModuleOutages:
    def test_zero_length_outage_is_a_no_op(self):
        module = MemoryModule()
        module.add_outage(5, 5)  # empty window [5, 5)
        assert module.outages == ()
        grant, accesses = module.request(5)
        assert (grant, accesses) == (5, 1)
        assert module.outage_cycles == 0

    def test_inverted_outage_is_a_no_op(self):
        module = MemoryModule()
        module.add_outage(9, 4)
        assert module.outages == ()

    def test_negative_outage_start_rejected(self):
        with pytest.raises(ValueError):
            MemoryModule().add_outage(-1, 5)

    def test_request_defers_past_outage(self):
        module = MemoryModule()
        module.add_outage(3, 8)
        grant, accesses = module.request(3)
        assert grant == 8
        # Every denied cycle counts, exactly as under contention.
        assert accesses == 8 - 3 + 1
        assert module.outage_cycles == 5

    def test_request_before_outage_unaffected(self):
        module = MemoryModule()
        module.add_outage(10, 20)
        grant, accesses = module.request(2)
        assert (grant, accesses) == (2, 1)
        assert module.outage_cycles == 0

    def test_back_to_back_windows_walked_through(self):
        module = MemoryModule()
        module.add_outage(4, 6)
        module.add_outage(6, 9)
        grant, __ = module.request(4)
        assert grant == 9

    def test_peek_grant_time_sees_outage(self):
        module = MemoryModule()
        module.add_outage(0, 12)
        assert module.peek_grant_time(0) == 12
        grant, __ = module.request(0)
        assert grant == 12

    def test_reset_clears_outages(self):
        module = MemoryModule()
        module.add_outage(0, 100)
        module.request(0)
        module.reset()
        assert module.outages == ()
        assert module.outage_cycles == 0
        grant, __ = module.request(0)
        assert grant == 0


class TestNetworkModel:
    def test_separate_modules(self):
        network = NetworkModel()
        g_var, __ = network.variable_module.request(0)
        g_flag, __ = network.flag_module.request(0)
        # Different modules: both granted in the same cycle.
        assert g_var == 0
        assert g_flag == 0

    def test_totals_combine_both_modules(self):
        network = NetworkModel()
        network.variable_module.request(0)
        network.variable_module.request(0)
        network.flag_module.request(0)
        assert network.total_grants == 3
        assert network.total_accesses == 4
        assert network.contention_accesses == 1

    def test_reset(self):
        network = NetworkModel()
        network.variable_module.request(0)
        network.reset()
        assert network.total_accesses == 0
