"""Tests for fine-grained paper claims not covered elsewhere."""

import numpy as np
import pytest

from repro.barrier.arrivals import FixedArrivals
from repro.barrier.simulator import BarrierSimulator
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff, VariableBackoff
from repro.core.barrier import TangYewBarrier
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.trace.apps import build_app
from repro.trace.io import load_trace, save_trace
from repro.trace.program import AddressSpace, ParallelLoop, Program, SerialSection
from repro.trace.record import Op
from repro.trace.scheduler import PostMortemScheduler


class TestFinalWriteInterference:
    """Section 4.2: backoff 'can also help prevent interference with
    the final processor write request that will release the processes
    waiting on the flag.'"""

    def _writer_cost(self, policy, n=32, spread=5):
        # Arrivals close together: pollers camp on the flag module and
        # the last arrival's write must fight through them.
        arrivals = FixedArrivals([i * spread for i in range(n)])
        simulator = BarrierSimulator(TangYewBarrier(n, backoff=policy), arrivals)
        result = simulator.run_once(np.random.default_rng(0))
        # The last processor's accesses are its F&A (cheap, arrivals are
        # spread) plus the flag-write attempts.
        return result.accesses_per_process[n - 1]

    def test_backoff_unblocks_the_release_write(self):
        contended = self._writer_cost(NoBackoff())
        relieved = self._writer_cost(ExponentialFlagBackoff(2))
        assert relieved < contended * 0.7

    def test_flag_set_earlier_with_backoff(self):
        arrivals = FixedArrivals([i * 5 for i in range(32)])
        plain = BarrierSimulator(
            TangYewBarrier(32, backoff=NoBackoff()), arrivals
        ).run_once(np.random.default_rng(0))
        backoff = BarrierSimulator(
            TangYewBarrier(32, backoff=ExponentialFlagBackoff(2)), arrivals
        ).run_once(np.random.default_rng(0))
        assert backoff.flag_set_time <= plain.flag_set_time


class TestUniformSpreadContentionRelief:
    """Section 6.1: 'when the arrivals are spread out slightly, there
    is less contention in accessing the barrier' — A=100 beats A=0 for
    large N."""

    def test_spread_relieves_variable_contention(self):
        from repro.barrier.simulator import simulate_barrier

        tight = simulate_barrier(256, 0, NoBackoff(), repetitions=10)
        spread = simulate_barrier(256, 100, NoBackoff(), repetitions=10)
        assert spread.mean_accesses < tight.mean_accesses


class TestSchedulerMixedPrograms:
    def test_serial_then_loop_under_tree_barriers(self):
        program = Program(
            "mixed",
            AddressSpace(),
            [
                SerialSection("s", [(Op.READ, 0x100)] * 10),
                ParallelLoop("l", 12, [(Op.WRITE, 0x200)]),
            ],
        )
        trace = PostMortemScheduler(
            program, 9, barrier_style="tree", tree_degree=3
        ).run()
        assert len(trace.barriers) == 2
        for barrier in trace.barriers:
            assert barrier.flag_set_cycle is not None
            assert len(barrier.arrivals) == 9

    def test_tree_trace_round_trips_through_io(self, tmp_path):
        program = build_app("FFT", scale=0.1)
        trace = PostMortemScheduler(
            program, 8, barrier_style="tree", tree_degree=2
        ).run()
        path = tmp_path / "tree.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.mean_interval_a() == trace.mean_interval_a()

    def test_tree_and_flat_same_barrier_count(self):
        flat = PostMortemScheduler(build_app("FFT", scale=0.1), 8).run()
        tree = PostMortemScheduler(
            build_app("FFT", scale=0.1), 8, barrier_style="tree", tree_degree=2
        ).run()
        assert len(flat.barriers) == len(tree.barriers)


class TestVariableBackoffVariants:
    """Section 4.2's (N-i)+C and (N-i)*C generalisations."""

    def test_multiplied_backoff_saves_more_at_nonzero_a(self):
        from repro.barrier.simulator import simulate_barrier

        base = simulate_barrier(64, 200, NoBackoff(), repetitions=10)
        unit = simulate_barrier(64, 200, VariableBackoff(), repetitions=10)
        scaled = simulate_barrier(
            64, 200, VariableBackoff(multiplier=4), repetitions=10
        )
        assert scaled.mean_accesses < unit.mean_accesses < base.mean_accesses

    def test_multiplied_backoff_can_cost_waiting(self):
        from repro.barrier.simulator import simulate_barrier

        unit = simulate_barrier(64, 200, VariableBackoff(), repetitions=10)
        scaled = simulate_barrier(
            64, 200, VariableBackoff(multiplier=16), repetitions=10
        )
        # "it also adds the potential of increasing cpu idle time".
        assert scaled.mean_waiting_time >= unit.mean_waiting_time


class TestBlockSizeEffects:
    def test_sync_words_never_false_share(self):
        # Every sync variable is block-aligned in its own block, so two
        # different sync addresses never invalidate each other.
        program = build_app("FFT", scale=0.1)
        trace = PostMortemScheduler(program, 8).run()
        sync_blocks = {
            record.address // 16 for record in trace if record.is_sync
        }
        sync_addresses = {record.address for record in trace if record.is_sync}
        assert len(sync_blocks) == len(sync_addresses)

    def test_larger_blocks_false_share_the_column_pass(self):
        # FFT's column pass strides through the matrix, so bigger
        # blocks put different processors' elements in one block:
        # misses and invalidations *rise* with block size — the classic
        # false-sharing effect multiword blocks bring, and one reason
        # the paper keeps synchronization words in blocks of their own.
        trace = PostMortemScheduler(build_app("FFT", scale=0.1), 8).run()

        def stats(block_bytes):
            sim = CoherenceSimulator(
                CoherenceConfig(
                    num_cpus=8,
                    num_pointers=8,
                    block_bytes=block_bytes,
                    cache_bytes=256 * 1024,
                )
            )
            return sim.run(trace)

        small, large = stats(16), stats(64)
        assert large.misses > small.misses
        assert large.total_invalidations > small.total_invalidations
