"""Tests for repro.exec.supervisor: crash-proof supervised execution.

The load-bearing guarantees:

- A killed worker (``BrokenProcessPool``) never loses a sweep: the
  pool respawns, only the lost tasks re-dispatch, and the results are
  **bit-identical** to an undisturbed run.
- Retry waits follow the repository's own backoff policies, and the
  default exponential schedule reproduces the faults runner's
  historical ``base * 2**(n-1)`` exactly.
- Deadlines engage via ``SIGALRM`` on the main thread and degrade
  *observably* (``exec.deadline_unenforced``) elsewhere.
- Checkpoints are digest-verified: a truncated or hand-edited record
  reads as absent and is recomputed, never trusted.
- A corrupted cache entry is quarantined (moved aside + counted), the
  point recomputes, and the slot heals on the next put.
"""

import json
import os
import threading
import time
import warnings
from concurrent.futures import BrokenExecutor

import pytest

from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import ExponentialFlagBackoff
from repro.exec.cache import ResultCache, QUARANTINE_DIR
from repro.exec.context import ExecConfig, execution, get_stats, reset_stats
from repro.exec.engine import (
    execute_barrier_points,
    execute_experiment_points,
    PointSpec,
    shutdown_pools,
)
from repro.exec.supervisor import (
    COMPLETED,
    ChaosPlan,
    CheckpointMismatchError,
    CheckpointStore,
    PointRecord,
    PointTimeoutError,
    RetryPolicy,
    SupervisionError,
    SupervisorConfig,
    call_supervised,
    chaos_injection,
    config_digest,
    deadline_enforceable,
    parse_backoff_spec,
    register_entry,
    run_supervised,
    safe_filename,
    supervision,
    time_limit,
)
from repro.obs.tracer import Tracer, tracing
from repro.registry.spec import get_spec

# Tiny sweep shapes (mirrors test_exec.py): the guarantees are exact
# equalities, so a handful of repetitions prove as much as the grid.
N_VALUES = (2, 4)
REPS = 6


@pytest.fixture(autouse=True)
def _clean_state():
    reset_stats()
    _CALLS.clear()
    yield
    reset_stats()
    _CALLS.clear()


# -- retry scheduling ----------------------------------------------------


class TestRetryPolicy:
    def test_default_exponential_matches_legacy_faults_schedule(self):
        policy = RetryPolicy(base_seconds=0.05)
        for failures in range(1, 6):
            assert policy.wait_seconds(failures) == pytest.approx(
                0.05 * 2 ** (failures - 1)
            )

    def test_linear_schedule_scales_by_attempt(self):
        policy = RetryPolicy.from_spec("linear", base_seconds=0.1)
        assert [policy.wait_seconds(n) for n in (1, 2, 3)] == pytest.approx(
            [0.1, 0.2, 0.3]
        )

    def test_none_retries_immediately(self):
        policy = RetryPolicy.from_spec("none")
        assert policy.wait_seconds(1) == 0.0
        assert policy.wait_seconds(7) == 0.0

    def test_cap_bounds_deep_retries(self):
        policy = RetryPolicy(base_seconds=1.0, cap_seconds=3.0)
        assert policy.wait_seconds(10) == 3.0

    def test_explicit_base_option(self):
        policy = RetryPolicy.from_spec("exponential:base=3", base_seconds=0.1)
        assert policy.wait_seconds(3) == pytest.approx(0.1 * 9)

    def test_first_wait_always_equals_base_seconds(self):
        for spec in ("exponential", "exponential:base=5", "linear:step=3"):
            policy = RetryPolicy.from_spec(spec, base_seconds=0.2)
            assert policy.wait_seconds(1) == pytest.approx(0.2)

    def test_rejects_bad_failure_count(self):
        with pytest.raises(ValueError):
            RetryPolicy().wait_seconds(0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(cap_seconds=0)


class TestParseBackoffSpec:
    def test_accepts_known_policies(self):
        assert parse_backoff_spec("exponential").flag_wait(2) == 4
        assert parse_backoff_spec("linear:step=2").flag_wait(3) == 6
        assert parse_backoff_spec("none").flag_wait(3) == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "polynomial",
            "exponential:base",
            "exponential:base=two",
            "exponential:step=2",
            "linear:base=2",
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_backoff_spec(bad)


# -- supervisor configuration -------------------------------------------


class TestSupervisorConfig:
    def test_default_is_inert(self):
        config = SupervisorConfig()
        assert not config.active
        assert config.respawns == 2

    def test_active_flags(self):
        assert SupervisorConfig(retries=1).active
        assert SupervisorConfig(deadline_seconds=5.0).active
        assert SupervisorConfig(checkpoint_dir="/tmp/x").active

    def test_validates_at_construction(self):
        with pytest.raises(ValueError):
            SupervisorConfig(retries=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(respawns=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_seconds=0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff="polynomial")

    def test_supervision_restores_previous(self):
        from repro.exec.supervisor import get_supervisor_config

        before = get_supervisor_config()
        with supervision(SupervisorConfig(retries=3)) as installed:
            assert get_supervisor_config() is installed
        assert get_supervisor_config() is before


class TestChaosPlan:
    def test_kill_budget_is_bounded(self):
        plan = ChaosPlan(kill_workers=1)
        assert plan.claim_kill("a")
        assert not plan.claim_kill("b")
        assert not plan.claim_kill("a")  # never the same key twice

    def test_one_effect_per_key(self):
        plan = ChaosPlan(kill_workers=1, hang_points=1)
        assert plan.claim_kill("a")
        assert not plan.claim_hang("a")
        assert plan.claim_hang("b")
        assert not plan.claim_kill("b")

    def test_snapshot_names_victims(self):
        plan = ChaosPlan(kill_workers=1)
        plan.claim_kill("N=2")
        assert plan.snapshot()["killed"] == ["N=2"]


# -- deadlines ----------------------------------------------------------


class TestTimeLimit:
    def test_cuts_a_hung_block_short(self):
        if not deadline_enforceable():
            pytest.skip("SIGALRM unavailable on this platform/thread")
        started = time.monotonic()
        with pytest.raises(PointTimeoutError):
            with time_limit(0.05):
                time.sleep(5.0)
        assert time.monotonic() - started < 2.0

    def test_no_budget_means_no_alarm(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass

    def test_falls_back_unbounded_off_main_thread(self):
        tracer = Tracer(run_id="deadline-test")
        outcome = {}

        def work():
            # Off the main thread SIGALRM cannot engage: the block must
            # run to completion and the fallback must be counted.  The
            # tracer is installed *on this thread* — tracing() overrides
            # are thread-scoped, exactly how a serve job thread holds
            # its own tracer while enforcing deadlines.
            with tracing(tracer):
                with time_limit(0.01):
                    time.sleep(0.05)
            outcome["done"] = True

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert outcome["done"]
        counters = tracer.snapshot()["counters"]
        assert counters["exec.deadline_unenforced"] == 1


# -- inline supervision (call_supervised) --------------------------------


class TestCallSupervised:
    def test_default_config_is_a_plain_call(self):
        assert call_supervised(lambda: 42) == 42

    def test_retries_follow_the_backoff_schedule(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        config = SupervisorConfig(
            retries=3, backoff="exponential", backoff_base_seconds=0.05
        )
        result = call_supervised(flaky, config=config, sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.05, 0.1])
        assert get_stats().retries == 2

    def test_raises_original_error_after_budget(self):
        config = SupervisorConfig(retries=2, backoff="none")
        calls = []

        def always_fails():
            calls.append(1)
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_supervised(always_fails, config=config, sleep=lambda _: None)
        assert len(calls) == 3  # 1 try + 2 retries

    def test_deadline_times_out_a_hung_point(self):
        if not deadline_enforceable():
            pytest.skip("SIGALRM unavailable on this platform/thread")
        config = SupervisorConfig(deadline_seconds=0.05)
        with pytest.raises(PointTimeoutError):
            call_supervised(lambda: time.sleep(5.0), config=config)

    def test_keyboard_interrupt_is_never_retried(self):
        config = SupervisorConfig(retries=5, backoff="none")
        calls = []

        def interrupted():
            calls.append(1)
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            call_supervised(interrupted, config=config, sleep=lambda _: None)
        assert len(calls) == 1


# -- supervised fan-out over a (fake) pool -------------------------------

#: Per-key call counts for the flaky test entry, reset per test.
_CALLS = {}


def _flaky_entry(payload):
    """Supervised test entry: fails ``fail_times`` times, then echoes."""
    key = payload["key"]
    _CALLS[key] = _CALLS.get(key, 0) + 1
    if _CALLS[key] <= payload.get("fail_times", 0):
        raise ValueError(f"injected failure for {key}")
    return payload.get("value", key)


register_entry("supervisor_test", "tests.test_supervisor:_flaky_entry")


class FakeFuture:
    def __init__(self, value=None, error=None):
        self._value = value
        self._error = error

    def result(self):
        if self._error is not None:
            raise self._error
        return self._value


class FakePool:
    """An eager in-process stand-in for ProcessPoolExecutor.

    ``lethal=True`` simulates a worker death: every future of the
    round raises ``BrokenExecutor``, which is exactly how a real
    broken pool poisons its pending futures.
    """

    def __init__(self, lethal=False):
        self.lethal = lethal
        self.tasks = []

    def submit(self, fn, task):
        self.tasks.append(task)
        if self.lethal or task.get("chaos_kill"):
            return FakeFuture(error=BrokenExecutor("worker died"))
        try:
            return FakeFuture(value=fn(task))
        except BaseException as error:  # noqa: BLE001 - test double
            return FakeFuture(error=error)


class _PoolManager:
    """get_pool/discard_pool closure: pools[i] serves generation i."""

    def __init__(self, *pools):
        self.pools = list(pools)
        self.generation = 0
        self.discards = 0

    def get_pool(self):
        return self.pools[min(self.generation, len(self.pools) - 1)]

    def discard_pool(self):
        self.discards += 1
        self.generation += 1


def _tasks(*keys, **extra):
    return {key: dict(key=key, **extra) for key in keys}


class TestRunSupervised:
    def test_clean_round_delivers_everything(self):
        manager = _PoolManager(FakePool())
        delivered = {}
        outcome = run_supervised(
            _tasks("a", "b", "c"),
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
            on_result=delivered.__setitem__,
        )
        assert outcome.results == {"a": "a", "b": "b", "c": "c"}
        assert delivered == outcome.results
        assert outcome.errors == {}
        assert outcome.attempts == {"a": 1, "b": 1, "c": 1}
        assert outcome.worker_deaths == 0
        assert manager.discards == 0

    def test_worker_death_respawns_and_redispatches(self):
        manager = _PoolManager(FakePool(lethal=True), FakePool())
        outcome = run_supervised(
            _tasks("a", "b"),
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
        )
        assert outcome.results == {"a": "a", "b": "b"}
        assert outcome.worker_deaths == 1
        assert manager.discards == 1
        # Infrastructure death is not charged as a point attempt.
        assert outcome.attempts == {"a": 1, "b": 1}
        assert get_stats().worker_deaths == 1

    def test_respawn_budget_exhaustion_raises(self):
        manager = _PoolManager(FakePool(lethal=True))
        with pytest.raises(SupervisionError, match="respawn budget"):
            run_supervised(
                _tasks("a"),
                entry="supervisor_test",
                get_pool=manager.get_pool,
                discard_pool=manager.discard_pool,
                config=SupervisorConfig(respawns=0),
            )

    def test_task_failures_retry_on_the_backoff_schedule(self):
        manager = _PoolManager(FakePool())
        sleeps = []
        outcome = run_supervised(
            _tasks("a", "b", fail_times=2),
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
            config=SupervisorConfig(
                retries=2, backoff="exponential", backoff_base_seconds=0.05
            ),
            sleep=sleeps.append,
        )
        assert outcome.results == {"a": "a", "b": "b"}
        assert outcome.attempts == {"a": 3, "b": 3}
        assert outcome.retries == 4  # two keys, two retry rounds each
        # One wait per retry *round* (keys retry together).
        assert sleeps == pytest.approx([0.05, 0.1])
        assert get_stats().retries == 4

    def test_exhausted_retries_surface_the_original_error(self):
        manager = _PoolManager(FakePool())
        tasks = _tasks("a", fail_times=99)
        outcome = run_supervised(
            tasks,
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
            config=SupervisorConfig(retries=1, backoff="none"),
        )
        assert outcome.results == {}
        assert isinstance(outcome.errors["a"], ValueError)
        with pytest.raises(ValueError, match="injected failure"):
            outcome.raise_first_error(tasks)

    def test_submit_time_breakage_loses_only_the_tail(self):
        class SubmitBrokenPool(FakePool):
            def submit(self, fn, task):
                if len(self.tasks) >= 1:
                    raise BrokenExecutor("pool broke mid-submission")
                return super().submit(fn, task)

        manager = _PoolManager(SubmitBrokenPool(), FakePool())
        outcome = run_supervised(
            _tasks("a", "b", "c"),
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
        )
        assert outcome.results == {"a": "a", "b": "b", "c": "c"}
        assert outcome.worker_deaths == 1
        assert outcome.attempts == {"a": 1, "b": 1, "c": 1}

    def test_chaos_kill_marks_exactly_one_first_attempt(self):
        first, second = FakePool(), FakePool()
        manager = _PoolManager(first, second)
        with chaos_injection(ChaosPlan(kill_workers=1)):
            outcome = run_supervised(
                _tasks("a", "b"),
                entry="supervisor_test",
                get_pool=manager.get_pool,
                discard_pool=manager.discard_pool,
            )
        assert outcome.results == {"a": "a", "b": "b"}
        assert outcome.worker_deaths == 1
        killed = [t for t in first.tasks if t.get("chaos_kill")]
        assert len(killed) == 1
        # A re-dispatched task is never re-killed: recovery must finish.
        assert not any(t.get("chaos_kill") for t in second.tasks)

    def test_chaos_hang_is_cut_short_by_the_deadline_and_retried(self):
        if not deadline_enforceable():
            pytest.skip("SIGALRM unavailable on this platform/thread")
        manager = _PoolManager(FakePool())
        with chaos_injection(ChaosPlan(hang_points=1, hang_seconds=5.0)):
            outcome = run_supervised(
                _tasks("a"),
                entry="supervisor_test",
                get_pool=manager.get_pool,
                discard_pool=manager.discard_pool,
                config=SupervisorConfig(retries=1, deadline_seconds=0.05),
                sleep=lambda _: None,
            )
        assert outcome.results == {"a": "a"}
        assert outcome.retries == 1
        assert outcome.attempts == {"a": 2}

    def test_deadline_travels_in_the_task(self):
        pool = FakePool()
        manager = _PoolManager(pool)
        run_supervised(
            _tasks("a"),
            entry="supervisor_test",
            get_pool=manager.get_pool,
            discard_pool=manager.discard_pool,
            config=SupervisorConfig(deadline_seconds=7.0),
        )
        assert pool.tasks[0]["deadline_seconds"] == 7.0

    def test_unknown_entry_is_an_error(self):
        from repro.exec.supervisor import run_supervised_task

        with pytest.raises(ValueError, match="unknown supervised entry"):
            run_supervised_task({"entry": "no-such-entry", "payload": {}})

    def test_register_entry_validates_target(self):
        with pytest.raises(ValueError, match="module:callable"):
            register_entry("bad", "not-a-target")


# -- real-pool integration: kill a worker, results stay bit-identical ----


class TestWorkerDeathIntegration:
    def test_barrier_sweep_survives_sigkill_bit_identically(self):
        serial = simulate_barrier(
            4, 100, ExponentialFlagBackoff(base=2), repetitions=REPS, seed=3
        )
        with chaos_injection(ChaosPlan(kill_workers=1)):
            with execution(ExecConfig(jobs=2, force_engine=True)):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    survived = simulate_barrier(
                        4, 100, ExponentialFlagBackoff(base=2),
                        repetitions=REPS, seed=3,
                    )
        shutdown_pools(wait=False)
        assert vars(serial.accesses) == vars(survived.accesses)
        assert vars(serial.waiting) == vars(survived.waiting)
        assert get_stats().worker_deaths >= 1

    def test_experiment_points_survive_sigkill_bit_identically(self):
        spec = get_spec("figure5")
        params = spec.resolve({"n_values": N_VALUES, "repetitions": 2})
        points = spec.points(params)
        seed = int(params.get("seed") or 0)

        baseline = execute_experiment_points(
            "figure5", points, seed, ExecConfig(jobs=1, force_engine=True)
        )
        with chaos_injection(ChaosPlan(kill_workers=1)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                survived = execute_experiment_points(
                    "figure5", points, seed, ExecConfig(jobs=2)
                )
        shutdown_pools(wait=False)
        assert survived == baseline
        assert get_stats().worker_deaths >= 1


# -- universal checkpoint/resume ----------------------------------------


class TestExperimentCheckpointResume:
    def _points(self):
        spec = get_spec("figure5")
        params = spec.resolve({"n_values": N_VALUES, "repetitions": 2})
        return spec.points(params), int(params.get("seed") or 0)

    def test_truncated_record_is_recomputed_with_identical_results(
        self, tmp_path
    ):
        points, seed = self._points()
        checkpoint_dir = str(tmp_path / "ckpt")
        config = ExecConfig(jobs=1, force_engine=True)

        with supervision(SupervisorConfig(checkpoint_dir=checkpoint_dir)):
            first = execute_experiment_points("figure5", points, seed, config)

        # Tear one record mid-file, as a crash during a write would.
        victim = sorted(points)[0]
        record_path = os.path.join(
            checkpoint_dir, "points", f"{safe_filename(victim)}.json"
        )
        blob = open(record_path, "r", encoding="utf-8").read()
        with open(record_path, "w", encoding="utf-8") as handle:
            handle.write(blob[: len(blob) // 2])

        reset_stats()
        with supervision(
            SupervisorConfig(checkpoint_dir=checkpoint_dir, resume=True)
        ):
            second = execute_experiment_points("figure5", points, seed, config)

        assert second == first
        # Every intact point replayed; only the torn one recomputed.
        assert get_stats().points_resumed == len(points) - 1

    def test_hand_edited_record_fails_integrity_and_recomputes(
        self, tmp_path
    ):
        points, seed = self._points()
        checkpoint_dir = str(tmp_path / "ckpt")
        config = ExecConfig(jobs=1, force_engine=True)
        with supervision(SupervisorConfig(checkpoint_dir=checkpoint_dir)):
            first = execute_experiment_points("figure5", points, seed, config)

        victim = sorted(points)[0]
        record_path = os.path.join(
            checkpoint_dir, "points", f"{safe_filename(victim)}.json"
        )
        payload = json.load(open(record_path, "r", encoding="utf-8"))
        payload["data"] = {"tampered": True}  # digest now stale
        with open(record_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

        reset_stats()
        with supervision(
            SupervisorConfig(checkpoint_dir=checkpoint_dir, resume=True)
        ):
            second = execute_experiment_points("figure5", points, seed, config)
        assert second == first  # tampered data was never trusted
        assert get_stats().points_resumed == len(points) - 1

    def test_resume_against_a_different_sweep_is_refused(self, tmp_path):
        points, seed = self._points()
        checkpoint_dir = str(tmp_path / "ckpt")
        config = ExecConfig(jobs=1, force_engine=True)
        with supervision(SupervisorConfig(checkpoint_dir=checkpoint_dir)):
            execute_experiment_points("figure5", points, seed, config)

        spec = get_spec("figure5")
        other_params = spec.resolve({"n_values": (8,), "repetitions": 2})
        other_points = spec.points(other_params)
        with supervision(
            SupervisorConfig(checkpoint_dir=checkpoint_dir, resume=True)
        ):
            with pytest.raises(CheckpointMismatchError):
                execute_experiment_points(
                    "figure5", other_points, seed, config
                )

    def test_fresh_run_discards_a_stale_checkpoint(self, tmp_path):
        points, seed = self._points()
        checkpoint_dir = str(tmp_path / "ckpt")
        config = ExecConfig(jobs=1, force_engine=True)
        with supervision(SupervisorConfig(checkpoint_dir=checkpoint_dir)):
            execute_experiment_points("figure5", points, seed, config)
        # resume=False (the default) clears and restarts from scratch.
        reset_stats()
        with supervision(SupervisorConfig(checkpoint_dir=checkpoint_dir)):
            execute_experiment_points("figure5", points, seed, config)
        assert get_stats().points_resumed == 0


class TestCheckpointStore:
    def test_save_and_load_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        digest = config_digest({"kind": "test", "points": ["a"]})
        store.write_meta({"config_digest": digest})
        store.save_point(
            PointRecord(key="a", status=COMPLETED, data={"x": 1})
        )
        records = store.load(digest)
        assert records["a"].data == {"x": 1}
        assert records["a"].done

    def test_mismatched_digest_refuses_to_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.write_meta({"config_digest": "aaa"})
        with pytest.raises(CheckpointMismatchError):
            store.load("bbb")

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "nowhere"))
        assert store.load("anything") == {}


# -- cache quarantine ----------------------------------------------------


class TestCacheQuarantine:
    def _put(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = "ab" + "0" * 62
        path = cache.put(key, {"value": 7})
        return cache, key, path

    def test_unparseable_entry_is_quarantined_and_heals(self, tmp_path):
        cache, key, path = self._put(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "key": ')  # torn write

        assert cache.get(key) is None
        assert not os.path.exists(path)  # moved aside, not left to rot
        quarantined = os.listdir(
            os.path.join(cache.directory, QUARANTINE_DIR)
        )
        assert len(quarantined) == 1
        assert get_stats().cache_quarantined == 1

        # Second read is a plain miss: no double-count, nothing to move.
        assert cache.get(key) is None
        assert get_stats().cache_quarantined == 1

        # The slot heals on the next put.
        cache.put(key, {"value": 7})
        assert cache.get(key) == {"value": 7}

    def test_integrity_digest_mismatch_is_quarantined(self, tmp_path):
        cache, key, path = self._put(tmp_path)
        entry = json.load(open(path, "r", encoding="utf-8"))
        entry["payload"] = {"value": 999}  # digest now stale
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)

        assert cache.get(key) is None
        assert get_stats().cache_quarantined == 1
        assert os.listdir(os.path.join(cache.directory, QUARANTINE_DIR))

    def test_quarantine_counts_on_the_tracer(self, tmp_path):
        cache, key, path = self._put(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        tracer = Tracer(run_id="quarantine-test")
        with tracing(tracer):
            assert cache.get(key) is None
        assert tracer.snapshot()["counters"]["exec.cache_quarantined"] == 1

    def test_foreign_entry_is_a_plain_miss_not_quarantined(self, tmp_path):
        cache, key, path = self._put(tmp_path)
        entry = json.load(open(path, "r", encoding="utf-8"))
        entry["key"] = "f" * 64  # someone else's entry in our slot
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)

        assert cache.get(key) is None
        assert os.path.exists(path)  # nothing wrong with it: left alone
        assert get_stats().cache_quarantined == 0

    def test_engine_recomputes_after_quarantine_bit_identically(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXEC_CODE_DIGEST", "test-digest")
        cache_dir = str(tmp_path / "cache")
        spec = PointSpec(2, 100, ExponentialFlagBackoff(), repetitions=REPS)
        config = ExecConfig(jobs=1, cache=True, cache_dir=cache_dir)

        [cold] = execute_barrier_points([spec], config)
        from repro.exec.cache import cache_key as _cache_key

        key = _cache_key("barrier", spec.params(), spec.seed)
        path = ResultCache(cache_dir)._path(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")

        [healed] = execute_barrier_points([spec], config)
        assert vars(cold.accesses) == vars(healed.accesses)
        assert get_stats().cache_quarantined == 1
        # The recompute healed the slot: the next run is a warm hit.
        before = get_stats().cache_hits
        execute_barrier_points([spec], config)
        assert get_stats().cache_hits == before + 1
