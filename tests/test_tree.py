"""Tests for the combining-tree barrier simulator."""

import numpy as np
import pytest

from repro.barrier.arrivals import UniformArrivals
from repro.barrier.simulator import simulate_barrier
from repro.barrier.tree import (
    TreeBarrierSimulator,
    _build_nodes,
    simulate_tree_barrier,
)
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.core.barrier import CombiningTreeBarrier


def run_once(n, degree=4, interval_a=0, policy=None, seed=0):
    barrier = CombiningTreeBarrier(
        n, degree=degree, backoff=policy if policy else NoBackoff()
    )
    simulator = TreeBarrierSimulator(barrier, UniformArrivals(interval_a), seed=seed)
    return simulator.run_once(np.random.default_rng(seed))


class TestTreeConstruction:
    def test_node_count_64_deg4(self):
        nodes, leaf_of = _build_nodes(64, 4)
        # 16 leaves + 4 mid + 1 root.
        assert len(nodes) == 21
        assert len(set(leaf_of)) == 16

    def test_single_root_when_n_small(self):
        nodes, leaf_of = _build_nodes(3, 4)
        assert len(nodes) == 1
        assert nodes[0].parent is None
        assert nodes[0].expected == 3

    def test_ragged_tree(self):
        nodes, __ = _build_nodes(10, 4)
        # Leaves: groups of 4, 4, 2; one root of 3.
        leaf_expected = sorted(n.expected for n in nodes if n.parent is not None)
        assert leaf_expected == [2, 4, 4]
        root = [n for n in nodes if n.parent is None]
        assert len(root) == 1
        assert root[0].expected == 3

    def test_every_leaf_parent_chain_reaches_root(self):
        nodes, leaf_of = _build_nodes(64, 4)
        for leaf in set(leaf_of):
            current = leaf
            depth = 0
            while nodes[current].parent is not None:
                current = nodes[current].parent
                depth += 1
                assert depth < 10
            assert nodes[current].parent is None


class TestTreeExecution:
    @pytest.mark.parametrize("n", [1, 2, 4, 5, 16, 33, 64])
    def test_all_processors_released(self, n):
        result = run_once(n)
        assert len(result.waiting_times) == n
        assert all(w >= 0 for w in result.waiting_times)
        assert result.completion_time > 0

    def test_no_processor_departs_before_root_set(self):
        result = run_once(16, degree=4, interval_a=50, seed=2)
        assert result.flag_set_time is not None
        # Departure = observing a leaf flag, which is written only
        # after the root flag: all departures strictly after root set.
        departures = [
            w + a
            for w, a in zip(
                result.waiting_times, [0] * len(result.waiting_times)
            )
        ]
        assert max(departures) >= result.flag_set_time

    def test_accesses_positive_for_all(self):
        result = run_once(16)
        assert all(a >= 2 for a in result.accesses_per_process)

    def test_tree_beats_flat_barrier_at_scale(self):
        flat = simulate_barrier(256, 100, NoBackoff(), repetitions=5)
        tree = simulate_tree_barrier(256, 100, degree=4, repetitions=5)
        assert tree.mean_accesses < flat.mean_accesses / 3

    def test_backoff_at_nodes_reduces_accesses(self):
        plain = simulate_tree_barrier(64, 100, degree=4, repetitions=5)
        backoff = simulate_tree_barrier(
            64, 100, degree=4, policy=ExponentialFlagBackoff(2), repetitions=5
        )
        assert backoff.mean_accesses < plain.mean_accesses

    def test_degree_two_deeper_but_works(self):
        result = run_once(32, degree=2)
        assert len(result.waiting_times) == 32

    def test_reproducible(self):
        a = simulate_tree_barrier(32, 100, degree=4, repetitions=3, seed=5)
        b = simulate_tree_barrier(32, 100, degree=4, repetitions=3, seed=5)
        assert a.mean_accesses == b.mean_accesses

    def test_aggregate_policy_label(self):
        aggregate = simulate_tree_barrier(8, 0, degree=2, repetitions=2)
        assert aggregate.policy_name.startswith("tree-2/")
