"""RunPlan: golden parity through the single execute() spine.

The acceptance bar for the dispatch-path convergence: every
pre-refactor registry digest (``tests/goldens/registry_parity.json``)
must come out of ``execute(RunPlan(...))`` byte-identical, the faults
port must produce the same resilience records as calling
``run_experiment_resilient`` directly, and one plan must digest
identically serial / parallel / cache-warmed.
"""

import dataclasses

import pytest

from repro.exec.context import ExecConfig, get_exec_config
from repro.exec.plan import (
    FaultOptions,
    MAX_SEED,
    RunPlan,
    execute,
    resolve_exec_config,
    summary_digest,
    validate_seed,
)
from repro.registry import ParameterError, UnknownExperimentError
from tests.test_experiments import FAST_KWARGS
from tests.test_registry_parity import GOLDENS, data_digest, text_digest


class TestGoldenParity:
    """The RunPlan port is digest-transparent for every experiment."""

    @pytest.mark.parametrize("experiment_id", sorted(GOLDENS))
    def test_execute_matches_pre_refactor_golden(self, experiment_id):
        plan = RunPlan(
            experiment_id=experiment_id, params=FAST_KWARGS[experiment_id]
        )
        outcome = execute(plan)
        assert outcome.ok
        assert (
            data_digest(outcome.result.data)
            == GOLDENS[experiment_id]["data_sha256"]
        )
        assert (
            text_digest(outcome.result)
            == GOLDENS[experiment_id]["text_sha256"]
        )

    def test_jobs2_plan_matches_golden(self):
        plan = RunPlan(
            experiment_id="figure5",
            params=FAST_KWARGS["figure5"],
            exec_config=ExecConfig(jobs=2, force_engine=True),
        )
        outcome = execute(plan)
        assert (
            data_digest(outcome.result.data) == GOLDENS["figure5"]["data_sha256"]
        )

    def test_serial_jobs2_warm_cache_digests_identical(self, tmp_path):
        base = RunPlan(
            experiment_id="determinism",
            params={"repetitions": 3, "points": ((2, 0), (4, 0)), "base": 2},
            seed=0,
        )
        serial = execute(base)
        cached = ExecConfig(
            jobs=2, cache=True, cache_dir=str(tmp_path), force_engine=True
        )
        cold = execute(base.with_exec(cached))
        warm = execute(base.with_exec(cached))
        assert serial.digest == cold.digest == warm.digest
        assert warm.stats.get("cache_hits", 0) > 0


class TestValidation:
    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError):
            RunPlan(experiment_id="figure99").validate()

    def test_unknown_parameter(self):
        with pytest.raises(ParameterError):
            RunPlan(experiment_id="figure5", params={"bogus": 1}).validate()

    def test_bad_seed(self):
        with pytest.raises(ValueError):
            RunPlan(experiment_id="figure5", seed=MAX_SEED).validate()

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            RunPlan(experiment_id="figure5", backend="fortran").validate()

    def test_bad_fault_plan(self):
        with pytest.raises(ValueError):
            RunPlan(
                experiment_id="figure5", fault_plan="meteor-strike"
            ).validate()

    def test_validate_seed_bounds(self):
        assert validate_seed(0) == 0
        assert validate_seed(MAX_SEED - 1) == MAX_SEED - 1
        with pytest.raises(ValueError):
            validate_seed(-1)
        with pytest.raises(ValueError):
            validate_seed("nope")


class TestSeedSemantics:
    """Plain runs inject --seed as a param when declared; fault runs
    pass it to the fault schedules instead (the historical CLI split)."""

    def test_seed_injected_when_declared(self):
        plan = RunPlan(
            experiment_id="figure5", params={"n_values": (2,)}, seed=7
        )
        assert plan.overrides()["seed"] == 7

    def test_explicit_param_wins(self):
        plan = RunPlan(
            experiment_id="figure5", params={"seed": 3}, seed=7
        )
        assert plan.overrides()["seed"] == 3

    def test_seed_not_injected_under_fault_plan(self):
        plan = RunPlan(experiment_id="figure5", seed=7, fault_plan="none")
        assert "seed" not in plan.overrides()

    def test_seed_not_injected_when_undeclared(self):
        plan = RunPlan(experiment_id="figure1", seed=7)
        assert "seed" not in plan.overrides()


class TestFaultPortParity:
    """run_plan_resilient reproduces run_experiment_resilient exactly."""

    def test_plan_and_direct_runner_digest_identically(self, tmp_path):
        from repro.faults.runner import run_experiment_resilient

        direct = run_experiment_resilient(
            "figure5",
            plan_spec="stragglers:probability=0.3",
            seed=1,
            checkpoint_dir=str(tmp_path / "direct"),
            n_values=(2, 4),
            repetitions=1,
        )
        plan = RunPlan(
            experiment_id="figure5",
            params={"n_values": (2, 4), "repetitions": 1},
            seed=1,
            fault_plan="stragglers:probability=0.3",
            faults=FaultOptions(checkpoint_dir=str(tmp_path / "plan")),
        )
        outcome = execute(plan)
        assert outcome.summary is not None and outcome.result is None
        assert outcome.digest == summary_digest(direct)
        assert {k: r.status for k, r in outcome.summary.records.items()} == {
            k: r.status for k, r in direct.records.items()
        }

    def test_none_plan_still_routes_resiliently(self, tmp_path):
        plan = RunPlan(
            experiment_id="figure5",
            params={"n_values": (2,), "repetitions": 1},
            fault_plan="none",
            faults=FaultOptions(checkpoint_dir=str(tmp_path)),
        )
        outcome = execute(plan)
        assert outcome.summary is not None
        assert outcome.ok and not outcome.degraded


class TestContexts:
    def test_plan_is_frozen_and_with_exec_copies(self):
        plan = RunPlan(experiment_id="figure5")
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.experiment_id = "figure4"
        copy = plan.with_exec(ExecConfig(jobs=2, force_engine=True))
        assert plan.exec_config is None
        assert copy.exec_config.jobs == 2

    def test_contexts_installs_exec_config(self):
        config = ExecConfig(jobs=2, force_engine=True)
        plan = RunPlan(experiment_id="figure5", exec_config=config)
        with plan.contexts():
            assert get_exec_config() is config
        assert get_exec_config() is not config

    def test_contexts_leaves_ambient_backend_alone(self):
        # A plan without a backend must not reset an ambient choice.
        from repro.barrier.backend import backend_context, get_default_backend

        plan = RunPlan(experiment_id="figure5")
        with backend_context("python"):
            with plan.contexts():
                assert get_default_backend() == "python"


class TestResolveExecConfig:
    def test_no_overrides_returns_ambient(self):
        assert resolve_exec_config() is get_exec_config()

    def test_any_override_forces_engine(self):
        config = resolve_exec_config(jobs=1)
        assert config.force_engine and config.jobs == 1

    def test_sweep_reexport_still_importable(self):
        # barrier.sweep re-exports the helper it used to own.
        from repro.barrier.sweep import resolve_exec_config as reexported

        assert reexported is resolve_exec_config
