"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.barrier.arrivals import FixedArrivals, UniformArrivals
from repro.barrier.simulator import BarrierSimulator
from repro.check import backoff_policy_strategy
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.core.barrier import CombiningTreeBarrier, TangYewBarrier
from repro.barrier.tree import TreeBarrierSimulator
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.network.module import MemoryModule
from repro.sim.stats import Histogram, RunningStats
from repro.trace.record import Op, TraceRecord

# The shared schema-derived policy generator (repro.check.fuzz): new
# policy shapes added there are picked up by this suite automatically.
policies = backoff_policy_strategy()


class TestMemoryModuleProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
    def test_grants_unique_and_cost_consistent(self, deltas):
        """Grants are strictly increasing; cost == grant - ready + 1."""
        module = MemoryModule()
        ready = 0
        last_grant = -1
        for delta in deltas:
            ready += delta
            grant, cost = module.request(ready)
            assert grant > last_grant
            assert grant >= ready
            assert cost == grant - ready + 1
            last_grant = grant

    @given(st.integers(min_value=1, max_value=200))
    def test_burst_total_accesses_triangular(self, n):
        """N simultaneous requests cost exactly 1 + 2 + ... + N accesses."""
        module = MemoryModule()
        total = sum(module.request(0)[1] for __ in range(n))
        assert total == n * (n + 1) // 2


class TestBackoffProperties:
    @given(policies, st.integers(1, 512), st.integers(1, 512))
    def test_variable_wait_nonnegative(self, policy, value, n):
        assert policy.variable_wait(value, n) >= 0

    @given(policies, st.integers(1, 40))
    def test_flag_wait_nonnegative(self, policy, polls):
        assert policy.flag_wait(polls) >= 0

    @given(st.integers(2, 8), st.integers(1, 30))
    def test_exponential_monotone_in_polls(self, base, polls):
        policy = ExponentialFlagBackoff(base=base)
        assert policy.flag_wait(polls + 1) >= policy.flag_wait(polls)

    @given(st.integers(2, 8), st.integers(1, 100))
    def test_cap_is_respected(self, base, polls):
        policy = ExponentialFlagBackoff(base=base, cap=500)
        assert policy.flag_wait(polls) <= 500


class TestBarrierProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        policies,
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_barrier_always_completes(self, policy, n, interval_a, seed):
        """Liveness: every processor departs, after the flag is set."""
        simulator = BarrierSimulator(
            TangYewBarrier(n, backoff=policy), UniformArrivals(interval_a)
        )
        result = simulator.run_once(np.random.default_rng(seed))
        assert len(result.waiting_times) == n
        assert result.flag_set_time is not None
        assert all(w >= 1 for w in result.waiting_times)
        assert result.completion_time >= result.flag_set_time

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_tree_barrier_always_completes(self, n, degree, interval_a, seed):
        simulator = TreeBarrierSimulator(
            CombiningTreeBarrier(n, degree=degree), UniformArrivals(interval_a)
        )
        result = simulator.run_once(np.random.default_rng(seed))
        assert len(result.waiting_times) == n
        assert all(w >= 0 for w in result.waiting_times)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=300), min_size=2, max_size=24
        ),
    )
    def test_minimum_access_floor(self, times):
        """Every process needs >= 2 accesses (variable + one flag op)."""
        simulator = BarrierSimulator(
            TangYewBarrier(len(times)), FixedArrivals(times)
        )
        result = simulator.run_once(np.random.default_rng(0))
        assert all(a >= 2 for a in result.accesses_per_process)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=1_000),
    )
    def test_variable_backoff_never_worse(self, n, interval_a, seed):
        """Backoff on the variable cannot increase total accesses."""
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        base = BarrierSimulator(
            TangYewBarrier(n, backoff=NoBackoff()), UniformArrivals(interval_a)
        ).run_once(rng_a)
        backoff = BarrierSimulator(
            TangYewBarrier(n, backoff=VariableBackoff()),
            UniformArrivals(interval_a),
        ).run_once(rng_b)
        assert backoff.total_accesses <= base.total_accesses


class TestCoherenceProperties:
    ops = st.sampled_from([Op.READ, Op.WRITE, Op.RMW])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),  # cpu
                ops,
                st.integers(0, 40),  # block index
                st.booleans(),  # is_sync
            ),
            min_size=1,
            max_size=300,
        )
    )
    def test_protocol_invariants_hold(self, refs):
        """Directory/cache invariants survive arbitrary traces."""
        sim = CoherenceSimulator(
            CoherenceConfig(num_cpus=8, num_pointers=3, cache_bytes=8 * 16)
        )
        for cpu, op, block, is_sync in refs:
            sim.process(
                TraceRecord(cpu=cpu, op=op, address=block * 16, is_sync=is_sync)
            )
        sim.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), ops, st.integers(0, 30)),
            min_size=1,
            max_size=200,
        )
    )
    def test_traffic_accounting_consistent(self, refs):
        """refs split into sync/data; traffic is non-negative."""
        sim = CoherenceSimulator(CoherenceConfig(num_cpus=4, num_pointers=2))
        for cpu, op, block in refs:
            sim.process(
                TraceRecord(cpu=cpu, op=op, address=block * 16, is_sync=False)
            )
        stats = sim.stats
        assert stats.refs == len(refs)
        assert stats.refs == stats.sync_refs + stats.data_refs
        assert stats.total_traffic >= 2 * stats.misses
        # Every cached reference probes exactly once.
        assert stats.hits + stats.misses == stats.refs


class TestStatsProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_welford_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        expected = float(np.mean(values))
        assert abs(stats.mean - expected) < 1e-6 * max(1.0, abs(expected))

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 50)),
            min_size=1,
            max_size=50,
        )
    )
    def test_histogram_fractions_sum_to_one(self, entries):
        histogram = Histogram()
        for key, count in entries:
            histogram.add(key, count)
        total = sum(histogram.fraction(k) for k in histogram.keys())
        assert abs(total - 1.0) < 1e-9

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_merge_equals_sequential(self, values):
        split = len(values) // 2
        left, right = RunningStats(), RunningStats()
        left.extend(values[:split])
        right.extend(values[split:])
        left.merge(right)
        sequential = RunningStats()
        sequential.extend(values)
        assert abs(left.mean - sequential.mean) < 1e-6 * max(
            1.0, abs(sequential.mean)
        )
        assert left.count == sequential.count


class TestApplicationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=20, max_value=200),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    def test_application_always_completes(self, n, work, rounds, seed):
        from repro.barrier.application import ApplicationSimulator

        simulator = ApplicationSimulator(
            n, work_interval=work, rounds=rounds, jitter=0.2
        )
        result = simulator.run_once(np.random.default_rng(seed))
        assert result.completion_time >= rounds * int(work * 0.8)
        assert len(result.arrival_spans) == rounds
        assert all(a >= 2 * rounds for a in result.accesses_per_process)


class TestPacketProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from([8, 16]),
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=100),
    )
    def test_packet_conservation(self, ports, rate, hot, seed):
        """Delivered <= injected; both non-negative; counters consistent."""
        from repro.network.packet import PacketSwitchedNetwork

        network = PacketSwitchedNetwork(num_ports=ports)
        result = network.run(
            horizon=300, injection_rate=rate, hot_fraction=hot, seed=seed
        )
        assert 0 <= result.delivered <= result.injected
        assert result.delivered_hot == result.latency_hot.count
        assert result.delivered_cold == result.latency_cold.count

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_packet_latency_floor(self, seed):
        from repro.network.packet import PacketSwitchedNetwork

        network = PacketSwitchedNetwork(num_ports=8)
        result = network.run(
            horizon=400, injection_rate=0.2, hot_fraction=0.0, seed=seed
        )
        if result.latency_cold.count:
            assert result.latency_cold.minimum >= network.num_stages


class TestSnoopyProperties:
    ops = st.sampled_from([Op.READ, Op.WRITE, Op.RMW])

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["invalidate", "update"]),
        st.lists(
            st.tuples(st.integers(0, 5), ops, st.integers(0, 30)),
            min_size=1,
            max_size=200,
        ),
    )
    def test_snoopy_invariants_hold(self, protocol, refs):
        """At most one dirty copy; sharer sets consistent; counters sane."""
        from repro.memory.snoopy import SnoopyConfig, SnoopySimulator

        sim = SnoopySimulator(
            SnoopyConfig(
                num_cpus=6,
                protocol=protocol,
                cache_bytes=8 * 16,
                block_bytes=16,
            )
        )
        for cpu, op, block in refs:
            sim.process(
                TraceRecord(cpu=cpu, op=op, address=block * 16, is_sync=False)
            )
        sim.check_invariants()
        stats = sim.stats
        assert stats.refs == len(refs)
        assert stats.hits + stats.misses == stats.refs
        assert stats.bus_transactions >= stats.misses
        assert stats.sync_bus_transactions == 0


class TestRenderingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 512),
                st.floats(min_value=0.1, max_value=1e5),
            ),
            min_size=1,
            max_size=12,
            unique_by=lambda p: p[0],
        )
    )
    def test_ascii_plot_never_crashes(self, points):
        from repro.analysis.figures import render_ascii_plot
        from repro.sim.stats import Series

        curve = Series(label="curve")
        for x, y in sorted(points):
            curve.add(x, y)
        text = render_ascii_plot({"curve": curve}, width=40, height=10)
        assert "curve" in text
        assert "|" in text
