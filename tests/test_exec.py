"""Tests for repro.exec: parallel sweep execution and the result cache.

The load-bearing guarantees:

- ``--jobs N`` is **bit-identical** to the serial path — aggregates,
  experiment data, fault-point record digests, and obs manifest
  digests all match exactly.
- The content-addressed cache returns exactly what was stored, misses
  on a changed code digest, and never changes a result digest (a warm
  run has the same digest as a cold one).
- ``--jobs`` validation is shared and strict.
"""

import json
import os
import warnings

import pytest

from repro.barrier.metrics import BarrierAggregate
from repro.barrier.simulator import simulate_barrier
from repro.barrier.sweep import sweep
from repro.core.backoff import (
    ExponentialFlagBackoff,
    NoBackoff,
    RandomizedExponentialBackoff,
)
from repro.exec.cache import (
    ResultCache,
    cache_key,
    canonical_params,
    code_digest,
    payload_digest,
)
from repro.exec.context import (
    ExecConfig,
    execution,
    get_stats,
    jobs_arg,
    reset_stats,
    validate_jobs,
)
from repro.exec.shards import shard_bounds

# Tiny sweep shapes: the guarantees under test are exact equalities,
# so two points at a handful of repetitions prove as much as the full
# paper grid.
N_VALUES = (2, 4)
REPS = 6


def _aggregate_state(aggregate: BarrierAggregate) -> dict:
    """Every float and counter inside an aggregate, for exact equality."""
    state = {
        "num_processors": aggregate.num_processors,
        "interval_a": aggregate.interval_a,
        "policy_name": aggregate.policy_name,
        "degraded_runs": aggregate.degraded_runs,
        "timed_out_processes": aggregate.timed_out_processes,
    }
    for name in ("accesses", "waiting", "waiting_p95", "queued"):
        state[name] = dict(vars(getattr(aggregate, name)))
    return state


class TestShardBounds:
    def test_partitions_cover_range_without_overlap(self):
        for reps in (1, 5, 8, 100):
            for shards in (1, 2, 3, 7):
                bounds = shard_bounds(reps, shards)
                flattened = [
                    rep for start, stop in bounds for rep in range(start, stop)
                ]
                assert flattened == list(range(reps))

    def test_fewer_reps_than_shards(self):
        bounds = shard_bounds(2, 4)
        assert all(start < stop for start, stop in bounds)
        assert sum(stop - start for start, stop in bounds) == 2


class TestJobsValidation:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_below_one(self, bad):
        with pytest.raises(ValueError):
            validate_jobs(bad)

    def test_warns_past_cpu_count(self):
        cpus = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning):
            assert validate_jobs(cpus + 1) == cpus + 1

    def test_accepts_one_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert validate_jobs(1) == 1

    def test_jobs_arg_rejects_non_integer(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            jobs_arg("many")
        with pytest.raises(argparse.ArgumentTypeError):
            jobs_arg("0")

    def test_exec_config_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ExecConfig(jobs=0)

    def test_active_flags(self):
        assert not ExecConfig().active
        assert ExecConfig(jobs=2).active
        assert ExecConfig(cache=True).active
        assert ExecConfig(force_engine=True).active


class TestSerialParallelEquivalence:
    """--jobs N must be bit-identical to the serial path."""

    def test_single_point_matches_serial(self):
        serial = simulate_barrier(
            4, 100, ExponentialFlagBackoff(base=2), repetitions=REPS, seed=3
        )
        with execution(ExecConfig(jobs=4, force_engine=True)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                parallel = simulate_barrier(
                    4, 100, ExponentialFlagBackoff(base=2),
                    repetitions=REPS, seed=3,
                )
        assert _aggregate_state(serial) == _aggregate_state(parallel)

    def test_barrier_sweep_matches_serial(self):
        serial = sweep(N_VALUES, 100, repetitions=REPS, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = sweep(N_VALUES, 100, repetitions=REPS, seed=1, jobs=4)
        assert serial.keys() == parallel.keys()
        for label in serial:
            for point_s, point_p in zip(serial[label], parallel[label]):
                assert _aggregate_state(point_s) == _aggregate_state(point_p)

    def test_stateful_policy_stays_inline_and_matches(self):
        # RandomizedExponentialBackoff carries RNG state across
        # episodes, so the engine must keep it out of the pool (and the
        # cache) while still producing the serial result.
        serial = simulate_barrier(
            4, 100, RandomizedExponentialBackoff(seed=5),
            repetitions=REPS, seed=2,
        )
        reset_stats()
        with execution(ExecConfig(jobs=3, force_engine=True)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                parallel = simulate_barrier(
                    4, 100, RandomizedExponentialBackoff(seed=5),
                    repetitions=REPS, seed=2,
                )
        assert _aggregate_state(serial) == _aggregate_state(parallel)
        assert get_stats().shards == 0  # never left the parent process

    def test_manifest_digest_identical_across_jobs(self, tmp_path):
        from repro.obs.profile import profile_experiment

        digests = {}
        for jobs in (1, 2):
            out = tmp_path / f"jobs{jobs}"
            with execution(ExecConfig(jobs=jobs, force_engine=True)):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    profiled = profile_experiment(
                        "figure5", output_dir=str(out), repetitions=1
                    )
            digests[jobs] = profiled.manifest.deterministic_digest()
            manifest = json.loads((out / "manifest.json").read_text())
            assert manifest["execution"]["jobs"] == jobs
        assert digests[1] == digests[2]

    def test_faults_sweep_matches_serial(self, tmp_path):
        from repro.faults.runner import run_experiment_resilient

        summaries = {}
        for jobs in (1, 4):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                summaries[jobs] = run_experiment_resilient(
                    "figure5",
                    plan_spec="stragglers",
                    seed=7,
                    checkpoint_dir=str(tmp_path / f"jobs{jobs}"),
                    jobs=jobs,
                    repetitions=1,
                )
        serial, parallel = summaries[1], summaries[4]
        assert serial.failed == 0 and parallel.failed == 0
        assert serial.records.keys() == parallel.records.keys()
        for key in serial.records:
            assert (
                serial.records[key].to_dict()["digest"]
                == parallel.records[key].to_dict()["digest"]
            )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("barrier", {"n": 4, "a": 100}, 0)
        assert cache.get(key) is None
        cache.put(key, {"value": [1.5, 2.5]})
        assert cache.get(key) == {"value": [1.5, 2.5]}

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("barrier", {"n": 4}, 0)
        cache.put(key, {"value": 1})
        (entry,) = [
            os.path.join(root, name)
            for root, _, names in os.walk(tmp_path)
            for name in names
        ]
        with open(entry, "w", encoding="utf-8") as handle:
            handle.write('{"torn":')
        assert cache.get(key) is None

    def test_key_depends_on_params_seed_and_code(self, monkeypatch):
        base = cache_key("barrier", {"n": 4}, 0)
        assert cache_key("barrier", {"n": 8}, 0) != base
        assert cache_key("barrier", {"n": 4}, 1) != base
        assert cache_key("other", {"n": 4}, 0) != base
        monkeypatch.setenv("REPRO_EXEC_CODE_DIGEST", "deadbeef")
        assert cache_key("barrier", {"n": 4}, 0) != base

    def test_canonical_params_order_independent(self):
        assert canonical_params({"b": 2, "a": (1, 2)}) == canonical_params(
            {"a": [1, 2], "b": 2}
        )

    def test_code_digest_env_override(self, monkeypatch):
        computed = code_digest()
        monkeypatch.setenv("REPRO_EXEC_CODE_DIGEST", "deadbeef")
        assert code_digest() == "deadbeef"
        monkeypatch.delenv("REPRO_EXEC_CODE_DIGEST")
        assert code_digest() == computed


class TestCachedExecution:
    def _run(self, cache_dir):
        return simulate_barrier(
            4, 100, NoBackoff(), repetitions=REPS, seed=9
        )

    def test_hit_miss_and_invalidation(self, tmp_path, monkeypatch):
        config = ExecConfig(cache=True, cache_dir=str(tmp_path))
        serial = self._run(None)

        reset_stats()
        with execution(config):
            cold = self._run(tmp_path)
        assert get_stats().cache_misses == 1
        assert get_stats().cache_stores == 1
        assert _aggregate_state(cold) == _aggregate_state(serial)

        reset_stats()
        with execution(config):
            warm = self._run(tmp_path)
        assert get_stats().cache_hits == 1
        assert get_stats().cache_misses == 0
        assert _aggregate_state(warm) == _aggregate_state(serial)

        # A changed code digest invalidates every prior entry.
        monkeypatch.setenv("REPRO_EXEC_CODE_DIGEST", "new-code-revision")
        reset_stats()
        with execution(config):
            invalidated = self._run(tmp_path)
        assert get_stats().cache_hits == 0
        assert get_stats().cache_misses == 1
        assert _aggregate_state(invalidated) == _aggregate_state(serial)

    def test_stateful_policy_never_cached(self, tmp_path):
        config = ExecConfig(cache=True, cache_dir=str(tmp_path))
        reset_stats()
        with execution(config):
            simulate_barrier(
                4, 100, RandomizedExponentialBackoff(seed=5),
                repetitions=REPS, seed=2,
            )
        stats = get_stats()
        assert stats.cache_misses == 0 and stats.cache_stores == 0

    def test_faults_cache_warm_run(self, tmp_path):
        from repro.faults.runner import run_experiment_resilient

        def run_once(tag):
            return run_experiment_resilient(
                "figure5",
                plan_spec="stragglers",
                seed=7,
                checkpoint_dir=str(tmp_path / tag),
                use_cache=True,
                cache_dir=str(tmp_path / "cache"),
                repetitions=1,
            )

        cold = run_once("cold")
        assert cold.cache_hits == 0
        assert cold.cache_stores == cold.total_points
        warm = run_once("warm")
        assert warm.cache_hits == warm.total_points
        assert warm.cache_stores == 0
        for key in cold.records:
            assert (
                cold.records[key].to_dict()["digest"]
                == warm.records[key].to_dict()["digest"]
            )


class TestPayloadDigest:
    def test_stable_across_key_order(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


def _entry_paths(cache_dir):
    """Every entry file under a cache directory, sorted."""
    return sorted(
        os.path.join(root, name)
        for root, _, names in os.walk(cache_dir)
        for name in names
        if name.endswith(".json")
    )


class TestCacheRobustness:
    """A damaged cache is a slow cache, never a wrong or crashing one.

    Whatever happens to the files on disk — truncation mid-write,
    hand-editing, version skew, emptiness, binary garbage — the warm
    run must treat the entry as a miss, recompute, re-store, and
    produce an aggregate identical to a clean run.
    """

    def _cold_run(self, cache_dir):
        config = ExecConfig(cache=True, cache_dir=str(cache_dir))
        reset_stats()
        with execution(config):
            aggregate = simulate_barrier(
                4, 100, NoBackoff(), repetitions=REPS, seed=9
            )
        assert get_stats().cache_stores >= 1
        return aggregate

    def _warm_run(self, cache_dir):
        config = ExecConfig(cache=True, cache_dir=str(cache_dir))
        reset_stats()
        with execution(config):
            return simulate_barrier(
                4, 100, NoBackoff(), repetitions=REPS, seed=9
            )

    @pytest.mark.parametrize("damage", [
        pytest.param(lambda path: open(path, "w").write('{"torn":'),
                     id="truncated-json"),
        pytest.param(lambda path: open(path, "w").write(""),
                     id="empty-file"),
        pytest.param(lambda path: open(path, "wb").write(b"\x00\xff\x00"),
                     id="binary-garbage"),
    ])
    def test_damaged_entry_recomputed_and_restored(
        self, tmp_path, damage
    ):
        clean = self._cold_run(tmp_path)
        entries = _entry_paths(tmp_path)
        for path in entries:
            damage(path)

        recovered = self._warm_run(tmp_path)
        stats = get_stats()
        assert stats.cache_hits == 0
        assert stats.cache_misses >= 1
        assert stats.cache_stores == stats.cache_misses  # re-stored
        assert _aggregate_state(recovered) == _aggregate_state(clean)

        # The re-store healed the cache: the next run hits.
        healed = self._warm_run(tmp_path)
        assert get_stats().cache_hits >= 1
        assert get_stats().cache_misses == 0
        assert _aggregate_state(healed) == _aggregate_state(clean)

    def test_hand_edited_payload_fails_integrity_and_recomputes(
        self, tmp_path
    ):
        # Valid JSON with a tampered payload: the integrity digest no
        # longer matches, so the entry must read as a miss — never as
        # wrong data folded into an aggregate.
        clean = self._cold_run(tmp_path)
        for path in _entry_paths(tmp_path):
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            entry["payload"] = {"forged": 12345}
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)

        recovered = self._warm_run(tmp_path)
        assert get_stats().cache_hits == 0
        assert _aggregate_state(recovered) == _aggregate_state(clean)

    def test_version_skew_reads_as_miss(self, tmp_path):
        clean = self._cold_run(tmp_path)
        for path in _entry_paths(tmp_path):
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            entry["version"] = 999  # a future layout
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)

        recovered = self._warm_run(tmp_path)
        assert get_stats().cache_hits == 0
        assert _aggregate_state(recovered) == _aggregate_state(clean)

    def test_unreadable_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("barrier", {"n": 4}, 0)
        path = cache.put(key, {"value": 1})
        os.chmod(path, 0o000)
        try:
            if os.access(path, os.R_OK):  # running as root: no EACCES
                pytest.skip("permissions are not enforced for this user")
            assert cache.get(key) is None
        finally:
            os.chmod(path, 0o644)


class TestPoolShutdown:
    """The pool leak fix: pools always release, even on ^C."""

    def test_shutdown_clears_the_registry(self):
        from repro.exec import engine

        engine._get_pool(2)
        assert engine._POOLS
        engine.shutdown_pools()
        assert engine._POOLS == {}

    def test_shutdown_is_idempotent(self):
        from repro.exec import engine

        engine.shutdown_pools()
        engine.shutdown_pools()
        assert engine._POOLS == {}

    def test_discard_drops_only_that_size(self):
        from repro.exec import engine

        engine._get_pool(2)
        survivor = engine._get_pool(3)
        engine._discard_pool(2)
        assert 2 not in engine._POOLS
        assert engine._POOLS[3] is survivor
        engine.shutdown_pools(wait=False)

    def test_signal_safe_shutdown_does_not_block_on_live_work(self):
        import time as _time

        from repro.exec import engine

        pool = engine._get_pool(2)
        pool.submit(_time.sleep, 30)
        started = _time.monotonic()
        engine.shutdown_pools(wait=False)  # the ^C path
        assert _time.monotonic() - started < 5.0
        assert engine._POOLS == {}

    def test_fresh_pool_after_shutdown(self):
        from repro.exec import engine

        first = engine._get_pool(2)
        engine.shutdown_pools(wait=False)
        second = engine._get_pool(2)
        assert second is not first
        assert list(second.map(abs, [-1])) == [1]
        engine.shutdown_pools(wait=False)
