"""Tests for Dir_i_NB directory state."""

import pytest

from repro.memory.directory import Directory, DirectoryEntry


class TestDirectoryEntry:
    def test_fresh_entry(self):
        entry = DirectoryEntry()
        assert not entry.is_cached
        assert not entry.is_dirty

    def test_dirty_owner(self):
        entry = DirectoryEntry()
        entry.sharers.add(3)
        entry.owner = 3
        assert entry.is_dirty
        assert entry.is_cached


class TestDirectory:
    def test_pointer_limit_clamped_to_cpus(self):
        directory = Directory(num_pointers=64, num_cpus=16)
        assert directory.num_pointers == 16
        assert directory.is_full_map

    def test_full_map_detection(self):
        assert Directory(64, 64).is_full_map
        assert not Directory(4, 64).is_full_map

    def test_entry_created_on_first_touch(self):
        directory = Directory(4, 16)
        assert directory.peek(10) is None
        entry = directory.entry(10)
        assert directory.peek(10) is entry

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Directory(0, 4)
        with pytest.raises(ValueError):
            Directory(4, 0)


class TestPointerOverflow:
    def test_no_victims_below_limit(self):
        directory = Directory(3, 16)
        entry = directory.entry(1)
        entry.sharers.update({0, 1})
        assert directory.pointer_overflow_victims(1, 5) == []

    def test_victim_when_full(self):
        directory = Directory(3, 16)
        entry = directory.entry(1)
        entry.sharers.update({4, 7, 9})
        victims = directory.pointer_overflow_victims(1, 5)
        assert victims == [4]  # deterministic: lowest id first

    def test_existing_sharer_needs_no_victims(self):
        directory = Directory(2, 16)
        entry = directory.entry(1)
        entry.sharers.update({4, 7})
        assert directory.pointer_overflow_victims(1, 4) == []

    def test_multiple_victims_if_overfull(self):
        # If the limit were lowered dynamically, several victims appear.
        directory = Directory(2, 16)
        entry = directory.entry(1)
        entry.sharers.update({1, 2, 3})
        victims = directory.pointer_overflow_victims(1, 9)
        assert victims == [1, 2]

    def test_full_map_never_evicts(self):
        directory = Directory(16, 16)
        entry = directory.entry(1)
        entry.sharers.update(range(15))
        assert directory.pointer_overflow_victims(1, 15) == []


class TestRemoveSharer:
    def test_removes_and_deletes_empty_entry(self):
        directory = Directory(4, 16)
        entry = directory.entry(1)
        entry.sharers.add(3)
        directory.remove_sharer(1, 3)
        assert directory.peek(1) is None

    def test_clears_owner(self):
        directory = Directory(4, 16)
        entry = directory.entry(1)
        entry.sharers.update({3, 5})
        entry.owner = 3
        directory.remove_sharer(1, 3)
        remaining = directory.peek(1)
        assert remaining is not None
        assert remaining.owner is None
        assert remaining.sharers == {5}

    def test_remove_from_missing_block_is_noop(self):
        directory = Directory(4, 16)
        directory.remove_sharer(99, 0)  # must not raise

    def test_tracked_blocks(self):
        directory = Directory(4, 16)
        directory.entry(5).sharers.add(0)
        directory.entry(2).sharers.add(0)
        assert directory.tracked_blocks() == [2, 5]
        assert len(directory) == 2
