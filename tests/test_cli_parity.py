"""CLI surface parity: the cli package decomposition changed nothing.

Pins every subcommand's option surface, --help exit codes, and the
shared validator error text (seed/jobs) so a refactor that drops or
renames a flag — or lets two subcommands drift apart on an error
message — fails loudly.
"""

import pytest

from repro.__main__ import build_parser, main

#: Every subcommand's option strings / positional metavars, in parser
#: order.  Captured from the pre-decomposition monolith (plus the new
#: ``scenario`` family); any drift is an API change, not a refactor.
OPTION_SURFACE = {
    "list": ["-h/--help"],
    "experiment": [
        "-h/--help", "<ID>", "--repetitions", "--scale", "--describe",
        "-p/--param",
    ],
    "run": [
        "-h/--help", "<ID>", "--repetitions", "--scale", "--seed",
        "--quiet", "-p/--param", "--jobs", "--cache/--no-cache",
        "--cache-dir", "--retries", "--deadline", "--retry-policy",
        "--checkpoint-dir", "--resume", "--backend",
    ],
    "barrier": [
        "-h/--help", "--n", "--interval-a", "--policy", "--base",
        "--step", "--repetitions", "--seed", "--barrier-style",
        "--degree", "--backend",
    ],
    "trace": [
        "-h/--help", "--app", "--cpus", "--scale", "--barrier-style",
        "--degree", "--save",
    ],
    "report": ["-h/--help", "--output"],
    "verify": ["-h/--help", "--repetitions", "--seed"],
    "profile": [
        "-h/--help", "<ID>", "--output", "--repetitions", "--scale",
        "--ring-size", "--show-result", "-p/--param", "--jobs",
        "--cache/--no-cache", "--cache-dir", "--retries", "--deadline",
        "--retry-policy", "--checkpoint-dir", "--resume", "--backend",
    ],
    "faults": [
        "-h/--help", "<ID>", "--plan", "--seed", "--checkpoint-dir",
        "--timeout/--deadline", "--max-retries/--retries",
        "--retry-backoff", "--retry-policy", "--max-points", "--fresh",
        "--repetitions", "--scale", "-p/--param", "--jobs",
        "--cache/--no-cache", "--cache-dir", "--backend",
    ],
    "check": [
        "-h/--help", "--suite", "--budget", "--seed", "--ids",
        "--output", "--retries", "--deadline", "--retry-policy",
        "--backend",
    ],
    "chaos": [
        "-h/--help", "<ID>", "--seed", "--jobs", "--kill", "--hang",
        "--hang-seconds", "--corrupt-cache/--no-corrupt-cache",
        "--truncate-checkpoint/--no-truncate-checkpoint", "--work-dir",
        "--keep", "--counters", "--repetitions", "--scale",
        "-p/--param", "--retries", "--deadline", "--retry-policy",
        "--backend",
    ],
    "scenario": ["-h/--help", "<scenario_command>"],
    "serve": [
        "-h/--help", "--host", "--port", "--jobs", "--cache/--no-cache",
        "--cache-dir", "--concurrency", "--retries", "--deadline",
        "--work-dir", "--backend",
    ],
    "advise": [
        "-h/--help", "--app", "--cpus", "--scale", "--waiting-weight",
        "--repetitions", "--seed", "--no-simulate",
    ],
}

SCENARIO_SURFACE = {
    "run": [
        "-h/--help", "<FILE>", "--output", "--against", "--work-dir",
        "--quiet", "--jobs", "--cache/--no-cache", "--cache-dir",
        "--backend",
    ],
    "describe": ["-h/--help", "<FILE>"],
    "diff": ["-h/--help", "<REPORT>", "<BASELINE>"],
}


def surface(parser):
    """Render a parser's actions as option strings / metavar names."""
    rendered = []
    for action in parser._actions:
        if action.option_strings:
            rendered.append("/".join(action.option_strings))
        elif action.dest != "help":
            rendered.append(f"<{action.metavar or action.dest}>")
    return rendered


def subparsers_of(parser):
    for action in parser._actions:
        if hasattr(action, "choices") and action.choices:
            return action.choices
    raise AssertionError("no subparsers found")


class TestOptionSurface:
    def test_commands_and_order(self):
        commands = subparsers_of(build_parser())
        assert list(commands) == list(OPTION_SURFACE)

    @pytest.mark.parametrize("command", sorted(OPTION_SURFACE))
    def test_option_surface_pinned(self, command):
        parser = subparsers_of(build_parser())[command]
        assert surface(parser) == OPTION_SURFACE[command]

    @pytest.mark.parametrize("subcommand", sorted(SCENARIO_SURFACE))
    def test_scenario_surface_pinned(self, subcommand):
        scenario = subparsers_of(build_parser())["scenario"]
        parser = subparsers_of(scenario)[subcommand]
        assert surface(parser) == SCENARIO_SURFACE[subcommand]


class TestHelp:
    @pytest.mark.parametrize("command", sorted(OPTION_SURFACE))
    def test_help_exits_0(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "--help" in capsys.readouterr().out

    @pytest.mark.parametrize("subcommand", sorted(SCENARIO_SURFACE))
    def test_scenario_help_exits_0(self, subcommand, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", subcommand, "--help"])
        assert excinfo.value.code == 0
        capsys.readouterr()

    def test_no_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestSharedValidatorText:
    """Every subcommand funnels through repro.cli.common, so the error
    text is literally identical — the dedupe satellite's contract."""

    SEED_COMMANDS = [
        ["run", "figure5", "--seed", "nope"],
        ["barrier", "--seed", "nope"],
        ["verify", "--seed", "nope"],
        ["advise", "--seed", "nope"],
        ["faults", "figure5", "--seed", "nope"],
        ["check", "--seed", "nope"],
        ["chaos", "figure5", "--seed", "nope"],
    ]

    @pytest.mark.parametrize(
        "argv", SEED_COMMANDS, ids=[a[0] for a in SEED_COMMANDS]
    )
    def test_seed_type_error_text_identical(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "seed must be an integer, got 'nope'" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [a[:-1] + [str(2**32)] for a in SEED_COMMANDS],
        ids=[a[0] for a in SEED_COMMANDS],
    )
    def test_seed_range_error_text_identical(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "seed must be in [0, 2**32), got 4294967296" in (
            capsys.readouterr().err
        )

    JOBS_COMMANDS = [
        ["run", "figure5", "--jobs", "0"],
        ["profile", "figure5", "--jobs", "0"],
        ["faults", "figure5", "--jobs", "0"],
        ["chaos", "figure5", "--jobs", "0"],
        ["scenario", "run", "x.json", "--jobs", "0"],
    ]

    @pytest.mark.parametrize(
        "argv", JOBS_COMMANDS, ids=["-".join(a[:2]) for a in JOBS_COMMANDS]
    )
    def test_jobs_error_text_identical(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "jobs must be >= 1, got 0" in capsys.readouterr().err

    RETRY_POLICY_COMMANDS = [
        ["run", "figure5", "--retry-policy", "polynomial"],
        ["profile", "figure5", "--retry-policy", "polynomial"],
        ["faults", "figure5", "--retry-policy", "polynomial"],
        ["check", "--retry-policy", "polynomial"],
    ]

    @pytest.mark.parametrize(
        "argv",
        RETRY_POLICY_COMMANDS,
        ids=[a[0] for a in RETRY_POLICY_COMMANDS],
    )
    def test_retry_policy_error_text_identical(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "retry policy" in capsys.readouterr().err


class TestDescribeOutput:
    def test_experiment_describe_pinned(self, capsys):
        assert main(["experiment", "figure5", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "n_values" in out
        assert "repetitions" in out
        assert "seed" in out
