"""Degraded-mode outcomes under every named fault plan.

Two bounded-give-up paths exist so fault scenarios terminate instead
of hanging:

- **barriers**: ``poll_budget`` / ``timeout_cycles`` make a waiting
  processor depart with a partial-arrival outcome
  (``BarrierRunResult.timed_out``, ``barrier.partial_arrival`` events);
- **locks**: ``max_attempts`` makes a contender give up the
  acquisition loop (``ResourceRunResult.aborted``).

Both are exercised here under each named fault plan — the plans are
exactly the conditions the degraded modes exist for.
"""

import pytest

from repro.barrier.resource import ResourceSimulator
from repro.barrier.simulator import BarrierSimulator
from repro.barrier.arrivals import UniformArrivals
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.core.barrier import TangYewBarrier
from repro.core.locks import BackoffLock, TestAndSetLock
from repro.faults import clear_fault_plan, fault_injection, parse_plan
from repro.obs.tracer import Tracer, tracing
from repro.sim.rng import spawn_stream

NAMED = ("stragglers", "hot-module", "lossy-net", "flaky-flags", "chaos")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


def _run_barrier(plan_name, seed=0, **barrier_kwargs):
    barrier_kwargs.setdefault("num_processors", 12)
    barrier_kwargs.setdefault("backoff", NoBackoff())
    simulator = BarrierSimulator(
        TangYewBarrier(**barrier_kwargs),
        arrivals=UniformArrivals(300),
        seed=seed,
    )
    plan = parse_plan(plan_name, seed=seed)
    tracer = Tracer(run_id=f"degraded-{plan_name}", ring_size=1 << 14)
    with fault_injection(plan), tracing(tracer):
        result = simulator.run_once(spawn_stream(seed, "barrier-rep-0"))
    return result, tracer, plan


class TestBarrierPollBudget:
    @pytest.mark.parametrize("plan_name", NAMED)
    def test_tight_poll_budget_reports_partial_arrival(self, plan_name):
        result, tracer, plan = _run_barrier(plan_name, poll_budget=1)
        n = result.num_processors
        # With a one-poll budget, anything that polls at all and misses
        # gives up — under every plan some processor does.
        assert result.timed_out
        assert result.degraded
        assert sorted(set(result.timed_out)) == sorted(result.timed_out)
        assert all(0 <= cpu < n for cpu in result.timed_out)
        # The run still accounts for everyone: each processor departs.
        assert len(result.waiting_times) == n
        assert all(wait >= 0 for wait in result.waiting_times)
        # One partial-arrival event per timed-out processor, and the
        # plan's own counter agrees.
        events = tracer.recent(kind="barrier.partial_arrival")
        assert sorted(e["cpu"] for e in events) == sorted(result.timed_out)
        assert plan.fault_counts["barrier.partial_arrival"] == len(
            result.timed_out
        )

    @pytest.mark.parametrize("plan_name", NAMED)
    def test_generous_budget_under_plan_completes_cleanly(self, plan_name):
        # A huge poll budget must behave like no budget: the episode
        # rides out the injected faults and nobody gives up.
        result, __, __ = _run_barrier(
            plan_name, poll_budget=1 << 20, backoff=ExponentialFlagBackoff()
        )
        if plan_name != "chaos":  # chaos carries its own degrade clause
            assert not result.timed_out
            assert not result.degraded

    @pytest.mark.parametrize("plan_name", NAMED)
    def test_degraded_runs_are_deterministic(self, plan_name):
        first, __, __ = _run_barrier(plan_name, seed=3, poll_budget=2)
        second, __, __ = _run_barrier(plan_name, seed=3, poll_budget=2)
        assert first.timed_out == second.timed_out
        assert first.accesses_per_process == second.accesses_per_process
        assert first.waiting_times == second.waiting_times


class TestBarrierTimeout:
    @pytest.mark.parametrize("plan_name", NAMED)
    def test_timeout_cycles_bound_the_wait(self, plan_name):
        result, tracer, __ = _run_barrier(plan_name, timeout_cycles=64)
        n = result.num_processors
        assert len(result.waiting_times) == n
        # Timed-out processors departed at the poll that crossed the
        # bound, so the episode terminated despite the faults.
        events = tracer.recent(kind="barrier.partial_arrival")
        assert sorted(e["cpu"] for e in events) == sorted(result.timed_out)
        # A timeout departure happens at the first poll past the bound,
        # so a timed-out processor waited at least timeout_cycles.
        for cpu in result.timed_out:
            assert result.waiting_times[cpu] >= 64

    def test_chaos_plan_supplies_its_own_poll_budget(self):
        # The chaos spec carries degrade:polls=4096, picked up when the
        # barrier itself sets no bound.
        plan = parse_plan("chaos", seed=0)
        assert plan.poll_budget == 4096
        assert parse_plan("stragglers", seed=0).poll_budget is None


class TestLockAbort:
    def _run_locked(self, plan_name, strategy, seed=0, n=10):
        simulator = ResourceSimulator(
            num_processors=n,
            strategy=strategy,
            hold_time=32,
            acquisitions=1,
            arrivals=UniformArrivals(0),
            seed=seed,
        )
        plan = parse_plan(plan_name, seed=seed)
        with fault_injection(plan):
            return simulator.run_once(spawn_stream(seed, "resource-rep-0"))

    @pytest.mark.parametrize("plan_name", ("none",) + NAMED)
    def test_bounded_test_and_set_aborts_under_contention(self, plan_name):
        # Simultaneous arrivals + a long hold + one permitted attempt:
        # everyone who loses the first race gives up.
        result = self._run_locked(
            plan_name, TestAndSetLock(max_attempts=1)
        )
        assert result.aborted
        assert result.degraded
        assert all(0 <= cpu < result.num_processors for cpu in result.aborted)
        assert len(set(result.aborted)) == len(result.aborted)
        # Every processor — aborted or not — has a finish time.
        assert len(result.finish_times) == result.num_processors
        assert result.makespan > 0

    @pytest.mark.parametrize("plan_name", ("none",) + NAMED)
    def test_bounded_backoff_lock_aborts_less(self, plan_name):
        # The adaptive lock spaces retries by hold_time * waiters, so a
        # small attempt bound still lets more processors through than
        # immediate-retry test&set with the same bound.
        tas = self._run_locked(plan_name, TestAndSetLock(max_attempts=2))
        backoff = self._run_locked(
            plan_name, BackoffLock(hold_time=32, max_attempts=2)
        )
        assert len(backoff.aborted) <= len(tas.aborted)

    def test_unbounded_lock_never_aborts(self):
        result = self._run_locked("chaos", TestAndSetLock())
        assert not result.aborted
        assert not result.degraded

    def test_abort_paths_are_deterministic(self):
        first = self._run_locked(
            "chaos", TestAndSetLock(max_attempts=1), seed=9
        )
        second = self._run_locked(
            "chaos", TestAndSetLock(max_attempts=1), seed=9
        )
        assert first.aborted == second.aborted
        assert first.accesses_per_process == second.accesses_per_process
        assert first.finish_times == second.finish_times
