"""Service-grade battery for ``repro serve`` over a real socket.

Every test talks HTTP/1.1 to a live :class:`BackgroundServer` on an
ephemeral 127.0.0.1 port with ``http.client`` — no shortcuts through
the app object — while the server shares the test process, so the
battery can install a chaos plan, read the process-wide exec counters,
and compare digests against in-process CLI runs:

- lifecycle: submit → poll → done → result, status payloads, listing;
- malformed submissions: HTTP 400 bodies carry exactly the error text
  the CLI prints as exit-2 usage errors;
- dedupe: concurrent identical submissions execute the plan exactly
  once (asserted via the ``exec.*`` counters) while every submitter
  receives the full result; completed jobs answer resubmissions from
  the warm path;
- digest identity: a served job digests identically to the same
  RunPlan executed through ``python -m repro run`` / the scenario
  runner;
- events: chunked JSONL replay and live follow, terminal marker last;
- recovery: a worker SIGKILLed mid-job is respawned and the job still
  completes with the clean-run digest.
"""

import http.client
import json
import threading
import time

import pytest

from repro.__main__ import main
from repro.exec.plan import RunPlan, execute
from repro.exec.supervisor import ChaosPlan, set_chaos_plan
from repro.serve import ServeConfig
from repro.serve.testing import BackgroundServer

#: Small but multi-point: two sweep points, two repetitions.
PARAMS = {"n_values": [2, 4], "repetitions": 2}
SUBMISSION = {"experiment": "figure5", "params": PARAMS, "seed": 3}

POLL_TIMEOUT = 120.0


def request(port, method, path, body=None, timeout=60.0):
    """One HTTP exchange; returns (status, parsed JSON body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=json.dumps(body) if body else None)
        response = conn.getresponse()
        payload = response.read()
        return response.status, json.loads(payload) if payload else None
    finally:
        conn.close()


def wait_done(port, job_id, timeout=POLL_TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = request(port, "GET", f"/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} still active after {timeout}s")


def read_event_stream(port, job_id, follow=True, timeout=POLL_TIMEOUT):
    """The events endpoint as a list of parsed JSONL events."""
    suffix = "" if follow else "?follow=0"
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/events{suffix}")
        response = conn.getresponse()
        assert response.status == 200
        body = response.read().decode("utf-8")
    finally:
        conn.close()
    return [json.loads(line) for line in body.splitlines() if line.strip()]


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(
        port=0,
        jobs=1,
        cache=True,
        cache_dir=str(tmp_path / "cache"),
        work_dir=str(tmp_path / "work"),
    )
    with BackgroundServer(config) as running:
        yield running


class TestLifecycle:
    def test_submit_poll_result(self, server):
        port = server.port
        _, health = request(port, "GET", "/healthz")
        assert health["status"] == "ok"

        status_code, accepted = request(port, "POST", "/jobs", SUBMISSION)
        assert status_code == 202
        assert accepted["deduplicated"] is False
        job = accepted["job"]
        assert job["kind"] == "experiment"
        assert job["state"] in ("queued", "running")
        assert job["submission"]["experiment"] == "figure5"

        final = wait_done(port, job["id"])
        assert final["state"] == "done"
        assert final["digest"]
        assert final["stats"]["points"] == 2

        status_code, result = request(
            port, "GET", f"/jobs/{job['id']}/result"
        )
        assert status_code == 200
        assert result["digest"] == final["digest"]
        assert result["result"]["kind"] == "experiment-result"
        assert result["result"]["data"]

        _, listing = request(port, "GET", "/jobs")
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]

    def test_result_conflicts_while_active_and_404s_unknown(self, server):
        port = server.port
        status_code, body = request(port, "GET", "/jobs/job-999999")
        assert status_code == 404
        assert "unknown job" in body["error"]

        _, accepted = request(port, "POST", "/jobs", SUBMISSION)
        job_id = accepted["job"]["id"]
        status_code, body = request(port, "GET", f"/jobs/{job_id}/result")
        if status_code != 200:  # may already be done on a fast machine
            assert status_code == 409
            assert job_id in body["error"]
        wait_done(port, job_id)

    def test_method_and_route_errors(self, server):
        port = server.port
        status_code, body = request(port, "POST", "/healthz", {"x": 1})
        assert status_code == 405
        status_code, body = request(port, "GET", "/nope")
        assert status_code == 404
        status_code, body = request(port, "DELETE", "/jobs")
        assert status_code == 405


class TestValidationParity:
    """HTTP 400 bodies carry the CLI's exit-2 error text verbatim."""

    def cli_error(self, capsys, argv):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        return err[len("error: "):].strip()

    def test_unknown_experiment(self, server, capsys):
        status_code, body = request(
            server.port, "POST", "/jobs", {"experiment": "nope"}
        )
        assert status_code == 400
        assert body["error"] == self.cli_error(capsys, ["run", "nope"])

    def test_unknown_parameter(self, server, capsys):
        status_code, body = request(
            server.port,
            "POST",
            "/jobs",
            {"experiment": "figure5", "params": {"bogus": 1}},
        )
        assert status_code == 400
        assert body["error"] == self.cli_error(
            capsys, ["run", "figure5", "-p", "bogus=1"]
        )

    def test_bad_seed_matches_shared_validator_text(self, server):
        status_code, body = request(
            server.port,
            "POST",
            "/jobs",
            {"experiment": "figure5", "seed": 2**32},
        )
        assert status_code == 400
        # The exact string the CLI's shared seed validator prints
        # (pinned in test_cli_parity.TestSharedValidatorText).
        assert body["error"] == "seed must be in [0, 2**32), got 4294967296"

    def test_unknown_plan_key_and_malformed_json(self, server):
        status_code, body = request(
            server.port, "POST", "/jobs", {"experiment": "figure5", "x": 1}
        )
        assert status_code == 400
        assert "unknown plan key(s): 'x'" in body["error"]

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/jobs", body="{not json")
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "invalid JSON body" in payload["error"]

    def test_bad_scenario_document(self, server):
        status_code, body = request(
            server.port, "POST", "/jobs", {"scenario": {"name": "x"}}
        )
        assert status_code == 400
        assert "block" in body["error"].lower()


class TestDedupe:
    def test_completed_job_answers_resubmission(self, server):
        port = server.port
        _, first = request(port, "POST", "/jobs", SUBMISSION)
        wait_done(port, first["job"]["id"])

        status_code, second = request(port, "POST", "/jobs", SUBMISSION)
        assert status_code == 200
        assert second["deduplicated"] is True
        assert second["job"]["id"] == first["job"]["id"]
        assert second["job"]["state"] == "done"
        assert second["job"]["attached"] == 1

    def test_different_plans_are_different_jobs(self, server):
        port = server.port
        _, first = request(port, "POST", "/jobs", SUBMISSION)
        other = dict(SUBMISSION, seed=4)
        _, second = request(port, "POST", "/jobs", other)
        assert second["job"]["id"] != first["job"]["id"]
        wait_done(port, first["job"]["id"])
        wait_done(port, second["job"]["id"])

    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        """The acceptance-criteria race: N submitters, one execution.

        Asserted via the exec counters: the points delta across the
        whole burst equals one run's point count, while every
        submitter still receives the full result.
        """
        config = ServeConfig(
            port=0,
            jobs=1,
            cache=True,
            cache_dir=str(tmp_path / "cache"),
            work_dir=str(tmp_path / "work"),
            concurrency=2,
        )
        with BackgroundServer(config) as server:
            port = server.port
            _, stats_before = request(port, "GET", "/stats")

            responses = [None] * 8
            barrier = threading.Barrier(len(responses))

            def submit(index):
                barrier.wait()
                responses[index] = request(port, "POST", "/jobs", SUBMISSION)

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(responses))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            job_ids = {body["job"]["id"] for _, body in responses}
            assert len(job_ids) == 1, f"expected one job, got {job_ids}"
            deduplicated = [body["deduplicated"] for _, body in responses]
            assert deduplicated.count(False) == 1
            assert deduplicated.count(True) == len(responses) - 1

            (job_id,) = job_ids
            final = wait_done(port, job_id)
            assert final["state"] == "done"
            assert final["attached"] == len(responses) - 1

            _, stats_after = request(port, "GET", "/stats")
            executed = (
                stats_after["exec"]["points"] - stats_before["exec"]["points"]
            )
            assert executed == 2  # one run's two points, exactly once

            # Every submitter can fetch the identical full result.
            digests = set()
            for _, body in responses:
                _, result = request(
                    port, "GET", f"/jobs/{body['job']['id']}/result"
                )
                digests.add(result["digest"])
                assert result["result"]["data"]
            assert digests == {final["digest"]}


class TestDigestParity:
    def test_served_digest_matches_cli_run(self, server, capsys):
        _, accepted = request(server.port, "POST", "/jobs", SUBMISSION)
        final = wait_done(server.port, accepted["job"]["id"])
        assert final["state"] == "done"

        assert main([
            "run", "figure5", "--seed", "3",
            "-p", "n_values=2,4", "-p", "repetitions=2",
        ]) == 0
        out = capsys.readouterr().out
        (digest_line,) = [
            line for line in out.splitlines() if "results digest" in line
        ]
        cli_digest = digest_line.split(":")[-1].strip()
        assert final["digest"] == cli_digest

    def test_served_scenario_matches_runner(self, server):
        document = {
            "name": "parity",
            "blocks": [
                {
                    "experiment": "figure5",
                    "params": PARAMS,
                    "axes": {"seed": [1, 2]},
                }
            ],
        }
        _, accepted = request(
            server.port, "POST", "/jobs", {"scenario": document}
        )
        final = wait_done(server.port, accepted["job"]["id"])
        assert final["state"] == "done"

        from repro.scenario import parse_scenario, run_scenario, scenario_report

        run = run_scenario(parse_scenario(document, source="test"))
        report = scenario_report(run)
        assert final["digest"] == report["aggregate_digest"]

        _, result = request(
            server.port, "GET", f"/jobs/{accepted['job']['id']}/result"
        )
        assert result["result"]["kind"] == "scenario-report"
        assert result["result"]["aggregate_digest"] == final["digest"]


class TestEventStream:
    def test_replay_and_follow(self, server):
        port = server.port
        _, accepted = request(port, "POST", "/jobs", SUBMISSION)
        job_id = accepted["job"]["id"]

        followed = read_event_stream(port, job_id, follow=True)
        kinds = [event["kind"] for event in followed]
        assert kinds[0] == "serve.job"
        assert followed[0]["state"] == "running"
        assert "exec.experiment_point" in kinds
        assert kinds[-1] == "serve.job"
        assert followed[-1]["state"] == "done"
        assert followed[-1]["digest"]

        replayed = read_event_stream(port, job_id, follow=False)
        assert replayed == followed

        final = wait_done(port, job_id)
        assert final["events"] == len(followed)


class TestRecovery:
    @pytest.mark.slow
    def test_killed_worker_recovers_with_clean_digest(self, tmp_path):
        """SIGKILL a pool worker mid-job; the served digest must still
        equal a clean serial run's."""
        clean = execute(
            RunPlan("figure5", params=PARAMS, seed=11)
        )
        config = ServeConfig(
            port=0,
            jobs=2,
            cache=True,
            cache_dir=str(tmp_path / "cache"),
            work_dir=str(tmp_path / "work"),
        )
        set_chaos_plan(ChaosPlan(kill_workers=1, seed=11))
        try:
            with BackgroundServer(config) as server:
                port = server.port
                _, accepted = request(
                    port, "POST", "/jobs", dict(SUBMISSION, seed=11)
                )
                final = wait_done(port, accepted["job"]["id"])
        finally:
            set_chaos_plan(None)
        assert final["state"] == "done"
        assert final["digest"] == clean.digest
        assert final["stats"]["worker_deaths"] >= 1
