"""Tests for the synthetic application builders."""

import pytest

from repro.trace.apps import APP_BUILDERS, build_app, build_fft, build_simple, build_weather
from repro.trace.program import ParallelLoop, ReplicateSection, SerialSection
from repro.trace.scheduler import PostMortemScheduler


class TestFFT:
    def test_two_loops(self):
        program = build_fft(problem_size=16)
        assert len(program.sections) == 2
        assert all(isinstance(s, ParallelLoop) for s in program.sections)

    def test_loop_parallelism_equals_problem_size(self):
        program = build_fft(problem_size=16)
        assert all(s.iterations == 16 for s in program.sections)

    def test_iteration_bodies_identical_length(self):
        program = build_fft(problem_size=16)
        loop = program.sections[0]
        lengths = {len(loop.refs_for(i)) for i in range(16)}
        assert len(lengths) == 1

    def test_invalid_problem_size(self):
        with pytest.raises(ValueError):
            build_fft(problem_size=1)


class TestSimple:
    def test_twenty_loops_five_serials(self):
        program = build_simple(scale=0.2)
        loops = [s for s in program.sections if isinstance(s, ParallelLoop)]
        serials = [s for s in program.sections if isinstance(s, SerialSection)]
        replicates = [
            s for s in program.sections if isinstance(s, ReplicateSection)
        ]
        assert len(loops) == 20
        assert len(serials) == 5
        assert len(replicates) == 20

    def test_iteration_lengths_vary(self):
        program = build_simple(scale=1.0)
        loop = next(s for s in program.sections if isinstance(s, ParallelLoop))
        lengths = {len(loop.refs_for(i)) for i in range(loop.iterations)}
        assert len(lengths) > 1

    def test_deterministic_given_seed(self):
        a = build_simple(scale=0.2, seed=5)
        b = build_simple(scale=0.2, seed=5)
        loop_a = next(s for s in a.sections if isinstance(s, ParallelLoop))
        loop_b = next(s for s in b.sections if isinstance(s, ParallelLoop))
        assert loop_a.refs_for(0) == loop_b.refs_for(0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_simple(scale=0)


class TestWeather:
    def test_row_and_col_loops_per_pass(self):
        program = build_weather(scale=0.25, num_passes=2)
        loops = [s for s in program.sections if isinstance(s, ParallelLoop)]
        assert len(loops) == 4

    def test_grid_extents_not_multiples_of_64(self):
        program = build_weather(scale=1.0, num_passes=1)
        loops = [s for s in program.sections if isinstance(s, ParallelLoop)]
        assert loops[0].iterations == 108
        assert loops[1].iterations == 72

    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            build_weather(num_passes=0)


class TestBuildApp:
    def test_known_names(self):
        for name in APP_BUILDERS:
            assert build_app(name, scale=0.1).name == name

    def test_case_insensitive(self):
        assert build_app("fft", scale=0.1).name == "FFT"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_app("SPLASH")


class TestCalibratedStructure:
    """The structural relationships the paper's measurements rely on."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: PostMortemScheduler(build_app(name, scale=0.25), 16).run()
            for name in ("FFT", "SIMPLE", "WEATHER")
        }

    def test_fft_has_lowest_sync_fraction(self, traces):
        assert traces["FFT"].sync_fraction < traces["SIMPLE"].sync_fraction
        assert traces["FFT"].sync_fraction < traces["WEATHER"].sync_fraction

    def test_fft_has_small_a_relative_to_e(self, traces):
        trace = traces["FFT"]
        assert trace.mean_interval_a() < trace.mean_interval_e() / 5

    def test_all_programs_complete(self, traces):
        for trace in traces.values():
            assert len(trace) > 0
            for barrier in trace.barriers:
                assert barrier.flag_set_cycle is not None
