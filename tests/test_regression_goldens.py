"""Golden regression values for the deterministic simulators.

Every simulator in this repository is deterministic given a seed, so
key outputs can be pinned exactly.  These goldens catch *unintentional*
behavioural drift: if a change is supposed to alter simulation results,
update the golden and say why in the commit.
"""

import pytest

from repro.barrier.simulator import simulate_barrier
from repro.barrier.tree import simulate_tree_barrier
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff, VariableBackoff
from repro.network.packet import PacketSwitchedNetwork
from repro.trace.apps import build_app
from repro.trace.scheduler import PostMortemScheduler


class TestBarrierGoldens:
    """Exact values, seed 0, 5 repetitions."""

    def test_a0_no_backoff_is_closed_form(self):
        # At A=0 the model is deterministic: accesses = 2.5N - 1.5.
        for n in (2, 8, 64, 256):
            aggregate = simulate_barrier(n, 0, NoBackoff(), repetitions=2)
            assert aggregate.mean_accesses == pytest.approx(2.5 * n - 1.5)

    def test_a0_variable_backoff_is_closed_form(self):
        # Variable backoff at A=0: N/2 var + drain N/2 + 1 poll each —
        # 127.98 for N=64 (deterministic; the last arrival writes the
        # flag instead of polling, hence the fraction).
        aggregate = simulate_barrier(64, 0, VariableBackoff(), repetitions=2)
        assert aggregate.mean_accesses == pytest.approx(127.984375)

    def test_seeded_values_pinned(self):
        aggregate = simulate_barrier(
            16, 500, ExponentialFlagBackoff(2), repetitions=5, seed=0
        )
        assert aggregate.mean_accesses == pytest.approx(9.0875, abs=1e-9)
        assert aggregate.mean_waiting_time == pytest.approx(282.4, abs=1e-9)

    def test_tree_seeded_values_pinned(self):
        aggregate = simulate_tree_barrier(
            32, 100, degree=4, repetitions=5, seed=0
        )
        assert aggregate.mean_accesses == pytest.approx(62.80625, abs=1e-9)


class TestTraceGoldens:
    def test_fft_trace_shape_pinned(self):
        trace = PostMortemScheduler(build_app("FFT", scale=0.25), 8).run()
        # Fully deterministic: pin the exact reference count and cycles.
        assert len(trace) == 10422
        assert trace.cycles == 1309
        assert trace.sync_refs == 182
        assert len(trace.barriers) == 2

    def test_simple_trace_sync_fraction_band(self):
        trace = PostMortemScheduler(build_app("SIMPLE", scale=0.25), 16).run()
        assert 0.02 < trace.sync_fraction < 0.15


class TestPacketGoldens:
    def test_seeded_run_pinned(self):
        network = PacketSwitchedNetwork(num_ports=16)
        result = network.run(
            horizon=500, injection_rate=0.3, hot_fraction=0.1, seed=7
        )
        # Exact counters for this seed; update only deliberately.
        assert result.injected + result.injection_blocked > 0
        a = (result.injected, result.delivered, result.injection_blocked)
        network2 = PacketSwitchedNetwork(num_ports=16)
        result2 = network2.run(
            horizon=500, injection_rate=0.3, hot_fraction=0.1, seed=7
        )
        b = (result2.injected, result2.delivered, result2.injection_blocked)
        assert a == b
