"""Tests for the trace record format and SPMD program skeletons."""

import pytest

from repro.trace.program import (
    AddressSpace,
    ParallelLoop,
    Program,
    ReplicateSection,
    SerialSection,
)
from repro.trace.record import Op, TraceRecord


class TestTraceRecord:
    def test_fields(self):
        record = TraceRecord(cpu=3, op=Op.READ, address=0x40, is_sync=True)
        assert record.cpu == 3
        assert record.op is Op.READ
        assert record.is_sync

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(cpu=-1, op=Op.READ, address=0, is_sync=False)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(cpu=0, op=Op.READ, address=-4, is_sync=False)

    def test_write_like(self):
        assert Op.WRITE.is_write_like
        assert Op.RMW.is_write_like
        assert not Op.READ.is_write_like

    def test_frozen(self):
        record = TraceRecord(cpu=0, op=Op.READ, address=0, is_sync=False)
        with pytest.raises(AttributeError):
            record.cpu = 1


class TestAddressSpace:
    def test_block_alignment(self):
        space = AddressSpace(block_bytes=16)
        a = space.alloc("a", 10)
        b = space.alloc("b", 1)
        assert a == 0
        assert b == 16  # rounded up to the next block

    def test_sync_alloc_one_block(self):
        space = AddressSpace(block_bytes=16)
        space.alloc("data", 64)
        sync = space.alloc_sync("flag")
        assert sync % 16 == 0
        assert space.size == 80

    def test_regions_recorded(self):
        space = AddressSpace()
        space.alloc("data", 32)
        names = [name for name, __, __ in space.regions]
        assert names == ["data"]

    def test_invalid_block_bytes(self):
        with pytest.raises(ValueError):
            AddressSpace(block_bytes=12)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("x", 0)


class TestSections:
    def test_parallel_loop_fixed_body(self):
        loop = ParallelLoop("l", 4, [(Op.READ, 0)])
        assert loop.refs_for(0) == [(Op.READ, 0)]
        assert loop.refs_for(3) == [(Op.READ, 0)]

    def test_parallel_loop_callable_body(self):
        loop = ParallelLoop("l", 4, lambda i: [(Op.WRITE, 16 * i)])
        assert loop.refs_for(2) == [(Op.WRITE, 32)]

    def test_loop_needs_iterations(self):
        with pytest.raises(ValueError):
            ParallelLoop("l", 0, [])

    def test_serial_section_needs_body(self):
        with pytest.raises(ValueError):
            SerialSection("s", [])

    def test_replicate_section_per_cpu(self):
        section = ReplicateSection("r", lambda cpu: [(Op.READ, cpu * 16)])
        assert section.body_for(3) == [(Op.READ, 48)]


class TestProgram:
    def test_num_barriers_counts_loops_and_serials(self):
        space = AddressSpace()
        program = Program("p", space)
        program.add(ParallelLoop("l", 2, [(Op.READ, 0)]))
        program.add(ReplicateSection("r", lambda cpu: []))
        program.add(SerialSection("s", [(Op.READ, 0)]))
        assert program.num_barriers == 2
        assert len(program) == 3

    def test_add_chains(self):
        space = AddressSpace()
        program = Program("p", space)
        result = program.add(ParallelLoop("l", 1, [(Op.READ, 0)]))
        assert result is program
