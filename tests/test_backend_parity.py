"""Backend parity: the numpy kernel vs the reference event loop.

The equivalence contract (docs/vectorization.md) says the two episode
backends are *bit-identical* for every configuration the kernel
accepts, and that unsupported configurations fall back to the event
loop transparently.  These tests pin both halves:

- every barrier-family experiment id produces digest-equal results on
  ``backend=python`` and ``backend=numpy`` at the miniature tier-1
  scale,
- a grid of simulator configurations (arrival processes, policies,
  degraded-mode bounds, tiny and odd N) produces identical episode
  summaries shard-by-shard,
- the no-numpy behavior: ``backend=auto`` silently falls back to the
  event loop while an explicit ``backend=numpy`` raises a clear error
  naming the ``[fast]`` extra (simulated via the availability override
  hook — numpy itself is installed in CI),
- the result cache is shared across backends (bit-identical results
  hash to the same content address),
- ``resolve_backend`` precedence: explicit argument over ambient
  default over ``auto``.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.barrier import backend as backend_mod
from repro.barrier.arrivals import (
    EmpiricalArrivals,
    FixedArrivals,
    UniformArrivals,
)
from repro.barrier.backend import (
    BackendUnavailableError,
    backend_context,
    get_kernel_counters,
    numpy_available,
    reset_kernel_counters,
    resolve_backend,
    set_default_backend,
)
from repro.barrier.simulator import BarrierSimulator, build_simulator
from repro.core.backoff import (
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.core.barrier import SingleVariableBarrier, TangYewBarrier
from repro.exec import payload_digest
from repro.obs.manifest import jsonable
from repro.registry import run
from tests.test_experiments import FAST_KWARGS

#: Experiment ids whose points run the barrier simulator (and so the
#: backend knob); everything else ignores it by schema.
BARRIER_IDS = (
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "hardware",
)


@pytest.fixture(autouse=True)
def _clean_backend_state():
    """Restore the backend default, override hook and counters."""
    set_default_backend(None)
    reset_kernel_counters()
    yield
    backend_mod._availability_override = None
    set_default_backend(None)
    reset_kernel_counters()


def _digest(result) -> str:
    return payload_digest(jsonable(result.data))


def _summaries(simulator, reps, backend):
    return [
        summary.as_tuple()
        for summary in simulator.run_shard(0, reps, backend=backend)
    ]


# -- experiment-level parity ---------------------------------------------


@pytest.mark.parametrize("experiment_id", BARRIER_IDS)
def test_experiment_digests_equal_across_backends(experiment_id):
    kwargs = FAST_KWARGS[experiment_id]
    python_digest = _digest(run(experiment_id, backend="python", **kwargs))
    reset_kernel_counters()
    numpy_digest = _digest(run(experiment_id, backend="numpy", **kwargs))
    assert python_digest == numpy_digest
    # The numpy run must actually have vectorized shards, otherwise the
    # equality above only re-tested the event loop against itself.
    assert get_kernel_counters().vectorized_shards > 0


# -- simulator-level parity grid -----------------------------------------

GRID_POLICIES = (
    NoBackoff(),
    VariableBackoff(),
    LinearFlagBackoff(step=2),
    ExponentialFlagBackoff(base=2),
    ExponentialFlagBackoff(base=8),
)


@pytest.mark.parametrize("policy", GRID_POLICIES, ids=lambda p: repr(p))
@pytest.mark.parametrize("interval_a", (0, 7, 100, 1000))
@pytest.mark.parametrize("n", (1, 2, 5, 16, 33))
def test_uniform_grid_summaries_identical(n, interval_a, policy):
    simulator = build_simulator(n, interval_a, policy, seed=3)
    assert _summaries(simulator, 4, "python") == _summaries(
        simulator, 4, "numpy"
    )


@pytest.mark.parametrize(
    "n, arrivals",
    (
        (3, FixedArrivals((0, 2, 9))),
        (4, FixedArrivals((5, 5, 5, 5))),
        (6, EmpiricalArrivals((0, 1, 1, 3, 12, 40))),
        (9, EmpiricalArrivals((0, 4, 17))),
    ),
    ids=lambda value: repr(value),
)
def test_nonuniform_arrivals_summaries_identical(n, arrivals):
    barrier = TangYewBarrier(n, backoff=ExponentialFlagBackoff(base=2))
    simulator = BarrierSimulator(barrier, arrivals, seed=11)
    assert _summaries(simulator, 3, "python") == _summaries(
        simulator, 3, "numpy"
    )


@pytest.mark.parametrize(
    "bounds",
    ({"poll_budget": 1}, {"poll_budget": 3}, {"timeout_cycles": 40}),
    ids=lambda b: ",".join(f"{k}={v}" for k, v in b.items()),
)
def test_degraded_bounds_summaries_identical(bounds):
    barrier = TangYewBarrier(12, backoff=NoBackoff(), **bounds)
    simulator = BarrierSimulator(barrier, UniformArrivals(300), seed=7)
    assert _summaries(simulator, 4, "python") == _summaries(
        simulator, 4, "numpy"
    )


def test_single_variable_falls_back_but_matches():
    barrier = SingleVariableBarrier(8, backoff=NoBackoff())
    simulator = BarrierSimulator(barrier, UniformArrivals(100), seed=5)
    python = _summaries(simulator, 3, "python")
    reset_kernel_counters()
    assert _summaries(simulator, 3, "numpy") == python
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 0
    assert counters.fallback_shards == 1


def test_supported_config_increments_vectorized_counter():
    simulator = build_simulator(16, 100, NoBackoff(), seed=0)
    reset_kernel_counters()
    simulator.run_shard(0, 3, backend="numpy")
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 1
    assert counters.fallback_shards == 0


# -- availability and fallback -------------------------------------------


def test_explicit_numpy_without_numpy_errors():
    backend_mod._availability_override = False
    assert not numpy_available()
    with pytest.raises(BackendUnavailableError, match=r"\[fast\]"):
        resolve_backend("numpy")
    simulator = build_simulator(8, 100, NoBackoff(), seed=0)
    with pytest.raises(BackendUnavailableError):
        simulator.run_shard(0, 2, backend="numpy")


def test_auto_without_numpy_uses_event_loop():
    simulator = build_simulator(8, 100, NoBackoff(), seed=0)
    expected = _summaries(simulator, 3, "python")
    backend_mod._availability_override = False
    assert resolve_backend("auto") == "python"
    assert resolve_backend(None) == "python"
    reset_kernel_counters()
    assert _summaries(simulator, 3, "auto") == expected
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 0
    assert counters.fallback_shards == 0  # never dispatched, not a fallback


def test_experiment_runs_without_numpy_available():
    backend_mod._availability_override = False
    kwargs = FAST_KWARGS["figure4"]
    without = _digest(run("figure4", **kwargs))
    backend_mod._availability_override = None
    with_numpy = _digest(run("figure4", **kwargs))
    assert without == with_numpy


# -- resolution precedence -----------------------------------------------


def test_resolve_backend_precedence():
    assert resolve_backend("python") == "python"
    assert resolve_backend("numpy") == "numpy"
    # auto picks numpy when importable (it is, in CI).
    assert resolve_backend("auto") == "numpy"
    with backend_context("python"):
        # ambient default applies when no explicit argument is given...
        assert resolve_backend(None) == "python"
        # ...but an explicit argument always wins.
        assert resolve_backend("numpy") == "numpy"
    # context restored the auto default.
    assert resolve_backend(None) == "numpy"
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("fortran")


# -- cache sharing --------------------------------------------------------


def test_result_cache_is_shared_across_backends():
    from repro.exec import ExecConfig, execution, get_stats, reset_stats

    kwargs = FAST_KWARGS["figure4"]
    with tempfile.TemporaryDirectory(prefix="backend-cache-") as tmp:
        config = ExecConfig(cache=True, cache_dir=tmp, force_engine=True)
        reset_stats()
        with execution(config):
            cold = _digest(run("figure4", backend="python", **kwargs))
        stores = get_stats().cache_stores
        assert stores > 0
        reset_stats()
        with execution(config):
            warm = _digest(run("figure4", backend="numpy", **kwargs))
        stats = get_stats()
    assert warm == cold
    # Every point the python run stored is a hit for the numpy run: the
    # backend knob never enters the content address.
    assert stats.cache_hits == stores
    assert stats.cache_misses == 0
