"""Tests for the barrier simulator — including the paper's worked numbers."""

import numpy as np
import pytest

from repro.barrier.arrivals import FixedArrivals, UniformArrivals
from repro.barrier.simulator import BarrierSimulator, simulate_barrier
from repro.core.backoff import (
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    VariableBackoff,
)
from repro.core.barrier import SingleVariableBarrier, TangYewBarrier


def run_once(barrier, arrivals=None, seed=0):
    simulator = BarrierSimulator(barrier, arrivals, seed=seed)
    return simulator.run_once(np.random.default_rng(seed))


class TestTinyCases:
    def test_single_processor(self):
        result = run_once(TangYewBarrier(1))
        # One variable access + one flag write.
        assert result.accesses_per_process == [2]
        assert result.waiting_times[0] >= 1

    def test_two_simultaneous_processors(self):
        result = run_once(TangYewBarrier(2))
        assert len(result.accesses_per_process) == 2
        assert result.flag_set_time is not None
        # Everyone departs at/after the flag set.
        assert result.completion_time >= result.flag_set_time

    def test_all_processors_depart(self):
        result = run_once(TangYewBarrier(16), UniformArrivals(50), seed=3)
        assert len(result.waiting_times) == 16
        assert all(w > 0 for w in result.waiting_times)

    def test_every_process_makes_at_least_two_accesses(self):
        # One variable F&A plus at least one flag access each.
        result = run_once(TangYewBarrier(8), UniformArrivals(100))
        assert all(a >= 2 for a in result.accesses_per_process)


class TestDeterministicScenario:
    def test_fixed_arrivals_reproducible(self):
        arrivals = FixedArrivals([0, 10, 20, 30])
        a = run_once(TangYewBarrier(4), arrivals)
        b = run_once(TangYewBarrier(4), arrivals)
        assert a.accesses_per_process == b.accesses_per_process
        assert a.waiting_times == b.waiting_times

    def test_widely_spread_arrivals_no_variable_contention(self):
        arrivals = FixedArrivals([0, 100, 200, 300])
        result = run_once(TangYewBarrier(4), arrivals)
        # Variable accesses: each F&A is uncontended (cost 1 each).
        assert result.variable_accesses == 4

    def test_flag_set_after_last_variable_access(self):
        arrivals = FixedArrivals([0, 5, 10])
        result = run_once(TangYewBarrier(3), arrivals)
        assert result.flag_set_time > 10


class TestModel1Agreement:
    """A = 0 ties to Model 1's 5N/2 and the paper's N=64 example."""

    @pytest.mark.parametrize("n", [8, 32, 64, 128])
    def test_no_backoff_matches_5n_over_2(self, n):
        # The simulator gives exactly 2.5N - 1.5; Model 1 is the 2.5N
        # large-N approximation, so allow an absolute slack of 2.
        aggregate = simulate_barrier(n, 0, NoBackoff(), repetitions=5)
        assert aggregate.mean_accesses == pytest.approx(2.5 * n, abs=2.0)

    def test_paper_n64_example(self):
        # "for the 64 processor case, a processor on average accessed
        # the network ... for a total of about 160 network accesses.
        # With backoff on the barrier variable this number reduced to
        # roughly 132, a 15% reduction."
        none = simulate_barrier(64, 0, NoBackoff(), repetitions=5)
        var = simulate_barrier(64, 0, VariableBackoff(), repetitions=5)
        assert none.mean_accesses == pytest.approx(160, rel=0.05)
        assert var.mean_accesses == pytest.approx(132, rel=0.08)
        savings = var.savings_vs(none)
        assert 0.10 < savings < 0.25

    def test_flag_backoff_useless_at_a0(self):
        # "using binary backoff ... made no difference because everyone
        # reaches the barrier at the same time when A = 0."
        var = simulate_barrier(64, 0, VariableBackoff(), repetitions=5)
        b2 = simulate_barrier(64, 0, ExponentialFlagBackoff(2), repetitions=5)
        assert b2.mean_accesses == pytest.approx(var.mean_accesses, rel=0.10)


class TestModel2Agreement:
    """A >> N ties to Model 2's r/2 + 3N/2."""

    @pytest.mark.parametrize("n,a", [(4, 1000), (16, 1000), (64, 1000)])
    def test_no_backoff_matches_model2(self, n, a):
        from repro.barrier.models import model2_accesses

        aggregate = simulate_barrier(n, a, NoBackoff(), repetitions=30)
        assert aggregate.mean_accesses == pytest.approx(
            model2_accesses(n, a), rel=0.08
        )


class TestBackoffBehaviour:
    def test_exponential_backoff_huge_savings_when_a_large(self):
        # Paper: >95% savings at A=1000, N=16, base 2.
        none = simulate_barrier(16, 1000, NoBackoff(), repetitions=30)
        b2 = simulate_barrier(16, 1000, ExponentialFlagBackoff(2), repetitions=30)
        assert b2.savings_vs(none) > 0.90

    def test_base8_waiting_time_blowup(self):
        # Paper: N=64, A=1000 — waits 576 (none) vs 2048 (base 8).
        none = simulate_barrier(64, 1000, NoBackoff(), repetitions=30)
        b8 = simulate_barrier(64, 1000, ExponentialFlagBackoff(8), repetitions=30)
        assert b8.mean_waiting_time > 2.5 * none.mean_waiting_time

    def test_base2_mild_waiting_cost(self):
        # Paper: binary backoff costs only ~16% extra waiting there.
        none = simulate_barrier(64, 1000, NoBackoff(), repetitions=30)
        b2 = simulate_barrier(64, 1000, ExponentialFlagBackoff(2), repetitions=30)
        assert b2.waiting_increase_vs(none) < 0.35

    def test_larger_base_fewer_accesses_more_waiting(self):
        b2 = simulate_barrier(32, 1000, ExponentialFlagBackoff(2), repetitions=30)
        b8 = simulate_barrier(32, 1000, ExponentialFlagBackoff(8), repetitions=30)
        assert b8.mean_accesses <= b2.mean_accesses
        assert b8.mean_waiting_time >= b2.mean_waiting_time

    def test_linear_backoff_between_none_and_exponential(self):
        none = simulate_barrier(32, 1000, NoBackoff(), repetitions=20)
        linear = simulate_barrier(32, 1000, LinearFlagBackoff(step=4), repetitions=20)
        b2 = simulate_barrier(32, 1000, ExponentialFlagBackoff(2), repetitions=20)
        assert b2.mean_accesses <= linear.mean_accesses <= none.mean_accesses

    def test_variable_backoff_never_increases_accesses(self):
        for a in (0, 100, 1000):
            none = simulate_barrier(64, a, NoBackoff(), repetitions=10)
            var = simulate_barrier(64, a, VariableBackoff(), repetitions=10)
            assert var.mean_accesses <= none.mean_accesses * 1.01


class TestSingleVariableBarrier:
    def test_completes(self):
        barrier = SingleVariableBarrier(8)
        result = run_once(barrier, UniformArrivals(20), seed=1)
        assert len(result.waiting_times) == 8

    def test_comparable_cost_at_large_a(self):
        # At A >> N both barriers' cost is dominated by the arrival
        # span, so they land within a few percent of each other.
        # (Under the model's earliest-request-first arbitration,
        # increments — which are presented before re-polls — never
        # starve behind pollers, so the single-variable barrier's
        # classic penalty only shows under fair per-cycle arbitration;
        # see DESIGN.md "Modelling assumptions".)
        single = BarrierSimulator(
            SingleVariableBarrier(32), UniformArrivals(1000), seed=0
        ).run(repetitions=10)
        double = BarrierSimulator(
            TangYewBarrier(32), UniformArrivals(1000), seed=0
        ).run(repetitions=10)
        assert single.mean_accesses == pytest.approx(
            double.mean_accesses, rel=0.05
        )

    def test_no_separate_flag_accesses(self):
        result = run_once(SingleVariableBarrier(4))
        assert result.flag_accesses == 0
        assert result.variable_accesses == sum(result.accesses_per_process)


class TestAggregation:
    def test_repetitions_counted(self):
        aggregate = simulate_barrier(8, 100, NoBackoff(), repetitions=7)
        assert aggregate.repetitions == 7

    def test_low_variance_across_runs(self):
        # Paper: standard deviation below ~7% over the runs.
        aggregate = simulate_barrier(64, 1000, NoBackoff(), repetitions=50)
        assert aggregate.relative_stddev_accesses < 0.10

    def test_seed_reproducibility(self):
        a = simulate_barrier(16, 500, ExponentialFlagBackoff(2), repetitions=5, seed=9)
        b = simulate_barrier(16, 500, ExponentialFlagBackoff(2), repetitions=5, seed=9)
        assert a.mean_accesses == b.mean_accesses
        assert a.mean_waiting_time == b.mean_waiting_time

    def test_different_seeds_differ(self):
        a = simulate_barrier(16, 500, NoBackoff(), repetitions=3, seed=1)
        b = simulate_barrier(16, 500, NoBackoff(), repetitions=3, seed=2)
        assert a.mean_accesses != b.mean_accesses

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            simulate_barrier(8, 0, NoBackoff(), repetitions=0)
