"""Tests for sweeps and metric aggregation."""

import pytest

from repro.barrier.metrics import BarrierAggregate, BarrierRunResult
from repro.barrier.sweep import (
    PAPER_A_VALUES,
    PAPER_N_VALUES,
    sweep,
    sweep_accesses,
    sweep_both,
    sweep_waiting_time,
)
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff


class TestBarrierRunResult:
    def test_means(self):
        result = BarrierRunResult(
            num_processors=3,
            interval_a=0,
            policy_name="x",
            accesses_per_process=[2, 4, 6],
            waiting_times=[10, 20, 30],
        )
        assert result.mean_accesses == 4.0
        assert result.mean_waiting_time == 20.0
        assert result.total_accesses == 12
        assert result.max_waiting_time == 30

    def test_empty_safe(self):
        result = BarrierRunResult(num_processors=0, interval_a=0, policy_name="x")
        assert result.mean_accesses == 0.0
        assert result.mean_waiting_time == 0.0
        assert result.max_waiting_time == 0


class TestBarrierAggregate:
    def _run(self, accesses, waits):
        return BarrierRunResult(
            num_processors=2,
            interval_a=0,
            policy_name="x",
            accesses_per_process=accesses,
            waiting_times=waits,
        )

    def test_add_and_average(self):
        aggregate = BarrierAggregate(2, 0, "x")
        aggregate.add_run(self._run([2, 4], [10, 10]))
        aggregate.add_run(self._run([4, 6], [20, 20]))
        assert aggregate.repetitions == 2
        assert aggregate.mean_accesses == 4.0
        assert aggregate.mean_waiting_time == 15.0

    def test_mismatched_processor_count_rejected(self):
        aggregate = BarrierAggregate(4, 0, "x")
        with pytest.raises(ValueError):
            aggregate.add_run(self._run([1, 1], [1, 1]))

    def test_savings_vs(self):
        baseline = BarrierAggregate(2, 0, "none")
        baseline.add_run(self._run([10, 10], [5, 5]))
        improved = BarrierAggregate(2, 0, "b2")
        improved.add_run(self._run([1, 1], [10, 10]))
        assert improved.savings_vs(baseline) == pytest.approx(0.9)
        assert improved.waiting_increase_vs(baseline) == pytest.approx(1.0)

    def test_savings_vs_zero_baseline(self):
        baseline = BarrierAggregate(2, 0, "none")
        improved = BarrierAggregate(2, 0, "b2")
        assert improved.savings_vs(baseline) == 0.0
        assert improved.waiting_increase_vs(baseline) == 0.0


class TestSweep:
    POLICIES = {"none": NoBackoff(), "b2": ExponentialFlagBackoff(2)}
    NS = (2, 8, 32)

    def test_sweep_shape(self):
        results = sweep(self.NS, 100, self.POLICIES, repetitions=3)
        assert set(results) == {"none", "b2"}
        assert [p.num_processors for p in results["none"]] == list(self.NS)

    def test_sweep_accesses_series(self):
        series = sweep_accesses(self.NS, 100, self.POLICIES, repetitions=3)
        curve = series["none"]
        assert curve.xs == list(self.NS)
        assert all(y > 0 for y in curve.ys)

    def test_accesses_monotone_in_n_without_backoff(self):
        series = sweep_accesses(self.NS, 0, {"none": NoBackoff()}, repetitions=3)
        ys = series["none"].ys
        assert ys == sorted(ys)

    def test_sweep_waiting_series(self):
        series = sweep_waiting_time(self.NS, 100, self.POLICIES, repetitions=3)
        assert set(series) == {"none", "b2"}

    def test_sweep_both_single_pass(self):
        both = sweep_both(self.NS, 100, self.POLICIES, repetitions=3)
        assert set(both) == {"accesses", "waiting"}
        assert both["accesses"]["none"].xs == list(self.NS)

    def test_default_policies_are_paper_five(self):
        series = sweep_accesses((2,), 0, repetitions=1)
        assert len(series) == 5

    def test_paper_constants(self):
        assert PAPER_N_VALUES == (2, 4, 8, 16, 32, 64, 128, 256, 512)
        assert PAPER_A_VALUES == (0, 100, 1000)


class TestWaitingPercentiles:
    def _run(self, waits):
        return BarrierRunResult(
            num_processors=len(waits),
            interval_a=0,
            policy_name="x",
            accesses_per_process=[1] * len(waits),
            waiting_times=list(waits),
        )

    def test_percentile_extremes(self):
        run = self._run([10, 20, 30, 40])
        assert run.waiting_percentile(0) == 10.0
        assert run.waiting_percentile(100) == 40.0

    def test_median(self):
        run = self._run([1, 2, 3, 4, 5])
        assert run.waiting_percentile(50) == 3.0

    def test_empty(self):
        run = BarrierRunResult(num_processors=0, interval_a=0, policy_name="x")
        assert run.waiting_percentile(95) == 0.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            self._run([1]).waiting_percentile(120)

    def test_aggregate_tracks_p95(self):
        aggregate = BarrierAggregate(4, 0, "x")
        aggregate.add_run(self._run([1, 2, 3, 100]))
        assert aggregate.mean_waiting_p95 == pytest.approx(100.0)

    def test_overshoot_shows_in_tail(self):
        from repro.barrier.simulator import simulate_barrier
        from repro.core.backoff import ExponentialFlagBackoff, NoBackoff

        base = simulate_barrier(32, 1000, NoBackoff(), repetitions=10)
        b8 = simulate_barrier(
            32, 1000, ExponentialFlagBackoff(8), repetitions=10
        )
        assert b8.mean_waiting_p95 > base.mean_waiting_p95


class TestSweepInterval:
    def test_savings_switch_on_as_a_grows(self):
        from repro.barrier.sweep import sweep_interval

        series = sweep_interval(
            16,
            (0, 100, 1000),
            {"none": NoBackoff(), "b2": ExponentialFlagBackoff(2)},
            repetitions=5,
        )
        none, b2 = series["none"], series["b2"]
        # At A=0 the policies are close; at A=1000 b2 wins by >10x.
        assert b2.y_at(0) > none.y_at(0) * 0.5
        assert b2.y_at(1000) < none.y_at(1000) / 10

    def test_x_axis_is_interval(self):
        from repro.barrier.sweep import sweep_interval

        series = sweep_interval(8, (0, 50), {"none": NoBackoff()}, repetitions=2)
        assert series["none"].xs == [0, 50]
