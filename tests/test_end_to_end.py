"""End-to-end workflows that cross subsystem boundaries.

These exercise the paths a downstream user actually takes: trace →
persist → reload → coherence; profile → advise → simulate under the
recommendation; application model vs single-episode model consistency.
"""

import pytest

from repro import (
    CoherenceConfig,
    CoherenceSimulator,
    PolicyAdvisor,
    PostMortemScheduler,
    SynchronizationProfile,
    build_app,
    load_trace,
    save_trace,
    simulate_application,
    simulate_barrier,
)
from repro.core.backoff import NoBackoff


class TestTracePersistWorkflow:
    def test_persisted_trace_yields_identical_table1_row(self, tmp_path):
        trace = PostMortemScheduler(build_app("SIMPLE", scale=0.12), 8).run()
        path = tmp_path / "simple.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)

        def row(t):
            sim = CoherenceSimulator(
                CoherenceConfig(num_cpus=8, num_pointers=2)
            )
            stats = sim.run(t)
            return (
                stats.sync_invalidation_pct,
                stats.data_invalidation_pct,
                stats.total_traffic,
            )

        assert row(trace) == row(reloaded)


class TestAdviseThenSimulateWorkflow:
    def test_recommended_policy_beats_no_backoff(self):
        trace = PostMortemScheduler(build_app("WEATHER", scale=0.2), 16).run()
        profile = SynchronizationProfile.from_trace(trace)
        recommendation = PolicyAdvisor().recommend(profile)
        n = profile.num_processors
        interval = max(int(round(profile.interval_a)), 1)
        base = simulate_barrier(n, interval, NoBackoff(), repetitions=10)
        advised = simulate_barrier(
            n, interval, recommendation.policy, repetitions=10
        )
        assert advised.mean_accesses <= base.mean_accesses

    def test_empirical_winner_beats_no_backoff_on_profile(self):
        trace = PostMortemScheduler(build_app("SIMPLE", scale=0.12), 8).run()
        profile = SynchronizationProfile.from_trace(trace)
        advisor = PolicyAdvisor()
        ranking = advisor.rank(profile, repetitions=10)
        labels = [label for label, __ in ranking]
        assert labels[-1] == "Without Backoff" or labels[0] != "Without Backoff"


class TestApplicationVsEpisodeConsistency:
    def test_first_round_matches_single_episode_scale(self):
        # The application model's per-barrier cost should be in the same
        # regime as a single-episode simulation at the emergent A.
        app = simulate_application(
            16, 500, policy=NoBackoff(), rounds=6, jitter=0.2, repetitions=5
        )
        emergent_a = max(int(round(app.arrival_span.mean)), 1)
        episode = simulate_barrier(
            16, emergent_a, NoBackoff(), repetitions=20
        )
        per_round = app.accesses.mean / 6
        assert per_round == pytest.approx(episode.mean_accesses, rel=0.5)

    def test_traffic_rate_consistent_with_period(self):
        # traffic rate = total accesses / (completion * P); since the
        # aggregate stores mean accesses *per process*, the rate must
        # equal mean_accesses / completion within run-to-run noise.
        app = simulate_application(
            16, 1000, policy=NoBackoff(), rounds=5, jitter=0.1, repetitions=5
        )
        implied_rate = app.accesses.mean / app.completion.mean
        assert app.traffic_rate.mean == pytest.approx(implied_rate, rel=0.05)
