"""Tests for arrival processes, analytic models and hardware baselines."""

import numpy as np
import pytest

from repro.barrier.arrivals import EmpiricalArrivals, FixedArrivals, UniformArrivals
from repro.barrier.hardware import (
    full_map_directory_accesses,
    hardware_baselines,
    hoshino_accesses,
    invalidating_bus_accesses,
    updating_bus_accesses,
)
from repro.barrier.models import (
    expected_span,
    exponential_savings_bound,
    model1_accesses,
    model2_accesses,
    model_prediction,
    variable_backoff_accesses,
)


def rng():
    return np.random.default_rng(42)


class TestUniformArrivals:
    def test_zero_interval_all_simultaneous(self):
        assert UniformArrivals(0).draw(5, rng()) == [0, 0, 0, 0, 0]

    def test_sorted_within_interval(self):
        times = UniformArrivals(100).draw(50, rng())
        assert times == sorted(times)
        assert all(0 <= t <= 100 for t in times)

    def test_interval_property(self):
        assert UniformArrivals(250).interval == 250

    def test_mean_span_matches_formula(self):
        # E[last - first] for N uniform arrivals in A is A(N-1)/(N+1).
        process = UniformArrivals(1000)
        generator = rng()
        n = 16
        spans = []
        for __ in range(2000):
            times = process.draw(n, generator)
            spans.append(times[-1] - times[0])
        measured = sum(spans) / len(spans)
        predicted = expected_span(1000, n)
        assert measured == pytest.approx(predicted, rel=0.03)

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformArrivals(-1)
        with pytest.raises(ValueError):
            UniformArrivals(10).draw(0, rng())


class TestFixedArrivals:
    def test_returns_given_times_sorted(self):
        process = FixedArrivals([9, 2, 5])
        assert process.draw(3, rng()) == [2, 5, 9]
        assert process.interval == 7

    def test_wrong_n_raises(self):
        with pytest.raises(ValueError):
            FixedArrivals([1, 2]).draw(3, rng())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FixedArrivals([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedArrivals([-1, 2])


class TestEmpiricalArrivals:
    def test_draws_anchor_at_zero(self):
        process = EmpiricalArrivals([0, 10, 20, 30, 500])
        times = process.draw(8, rng())
        assert times[0] == 0
        assert times == sorted(times)

    def test_interval_is_max_offset(self):
        assert EmpiricalArrivals([0, 10, 500]).interval == 500

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalArrivals([])


class TestModels:
    def test_model1_is_5n_over_2(self):
        assert model1_accesses(64) == 160.0
        assert model1_accesses(2) == 5.0

    def test_expected_span_limits(self):
        assert expected_span(1000, 1) == 0.0
        # r -> A as N grows.
        assert expected_span(1000, 10_000) == pytest.approx(1000, rel=0.001)

    def test_model2_formula(self):
        # r/2 + 3N/2 at N=16, A=1000: r = 1000*15/17.
        expected = (1000 * 15 / 17) / 2 + 24
        assert model2_accesses(16, 1000) == pytest.approx(expected)

    def test_prediction_takes_maximum(self):
        # Small A: Model 1 dominates; large A: Model 2 dominates.
        assert model_prediction(64, 0) == model1_accesses(64)
        assert model_prediction(4, 10_000) == model2_accesses(4, 10_000)

    def test_savings_bound_grows_with_span(self):
        small = exponential_savings_bound(16, 100, 2)
        large = exponential_savings_bound(16, 10_000, 2)
        assert large > small

    def test_savings_bound_shrinks_with_base(self):
        b2 = exponential_savings_bound(16, 10_000, 2)
        b8 = exponential_savings_bound(16, 10_000, 8)
        assert b8 < b2

    def test_savings_bound_floor(self):
        assert exponential_savings_bound(2, 0, 2) == 1.0

    def test_variable_backoff_saves_half_n(self):
        n = 64
        assert model_prediction(n, 0) - variable_backoff_accesses(n, 0) == 32.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            model1_accesses(0)
        with pytest.raises(ValueError):
            expected_span(-1, 4)
        with pytest.raises(ValueError):
            exponential_savings_bound(4, 100, 1)


class TestHardwareBaselines:
    def test_asymptotic_constants(self):
        assert invalidating_bus_accesses(10**6) == pytest.approx(3.0, abs=1e-5)
        assert updating_bus_accesses(10**6) == pytest.approx(2.0, abs=1e-5)
        assert full_map_directory_accesses(7) == 4.0
        assert hoshino_accesses(10**6) == pytest.approx(1.0, abs=1e-5)

    def test_exact_small_n(self):
        # 3n+1 accesses over n processors.
        assert invalidating_bus_accesses(4) == pytest.approx(13 / 4)
        assert hoshino_accesses(4) == pytest.approx(5 / 4)

    def test_baselines_dict(self):
        values = hardware_baselines(64)
        assert set(values) == {
            "invalidating bus",
            "updating bus",
            "full-map directory",
            "Hoshino gate",
        }
        assert values["Hoshino gate"] < values["updating bus"]
        assert values["updating bus"] < values["invalidating bus"]
        assert values["invalidating bus"] < values["full-map directory"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            hoshino_accesses(0)
