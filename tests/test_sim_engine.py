"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    Event,
    EventQueue,
    SimulationStalledError,
    Simulator,
)


class TestEventQueue:
    def test_starts_empty(self):
        assert len(EventQueue()) == 0

    def test_push_returns_event(self):
        queue = EventQueue()
        event = queue.push(5, lambda: None)
        assert isinstance(event, Event)
        assert event.time == 5

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.push(10, lambda: "late")
        queue.push(3, lambda: "early")
        assert queue.pop().time == 3

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_pop_empty_is_also_a_stall(self):
        with pytest.raises(SimulationStalledError, match="no events are pending"):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, lambda: None)

    def test_same_time_fifo_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(7, lambda: order.append("first"))
        queue.push(7, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(7, lambda: None, priority=5)
        low = queue.push(7, lambda: None, priority=1)
        assert queue.pop().seq == low.seq

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4, lambda: None)
        assert queue.peek_time() == 4


class TestSimulator:
    def test_runs_events_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(5))
        sim.schedule(2, lambda: fired.append(2))
        sim.schedule(9, lambda: fired.append(9))
        executed = sim.run()
        assert fired == [2, 5, 9]
        assert executed == 3

    def test_now_tracks_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(3, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: sim.schedule_after(5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [15]

    def test_schedule_after_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1, lambda: None)

    def test_until_horizon_stops(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append(3))
        sim.schedule(8, lambda: fired.append(8))
        sim.run(until=5)
        assert fired == [3]
        assert sim.pending == 1

    def test_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events_raises_stalled_when_work_pending(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_after(1, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(SimulationStalledError) as excinfo:
            sim.run(max_events=50)
        message = str(excinfo.value)
        assert "max_events=50" in message
        assert "still pending" in message

    def test_max_events_not_raised_when_queue_drains_exactly(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=5) == 5

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: sim.schedule(2, lambda: fired.append("chained")))
        sim.run()
        assert fired == ["chained"]

    def test_pending_counts_queued_events(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
