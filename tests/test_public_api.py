"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_snippet(self):
        baseline = repro.simulate_barrier(
            16, 1000, repro.NoBackoff(), repetitions=10
        )
        backoff = repro.simulate_barrier(
            16, 1000, repro.ExponentialFlagBackoff(base=2), repetitions=10
        )
        assert backoff.savings_vs(baseline) > 0.9

    def test_experiment_registry_exposed(self):
        assert "figure5" in repro.EXPERIMENTS
        assert len(repro.EXPERIMENTS) == 28

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.barrier",
            "repro.network",
            "repro.memory",
            "repro.trace",
            "repro.sim",
            "repro.analysis",
        ):
            importlib.import_module(module)

    def test_paper_constants(self):
        assert repro.PAPER_N_VALUES[-1] == 512
        assert repro.PAPER_A_VALUES == (0, 100, 1000)

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            repro.run("nonexistent")
