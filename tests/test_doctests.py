"""Run the doctests embedded in module and class docstrings."""

import doctest

import pytest

import repro.sim.engine
import repro.sim.rng


@pytest.mark.parametrize(
    "module",
    [repro.sim.engine, repro.sim.rng],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
    assert results.failed == 0
