"""Tree backend parity: the batched tree kernel vs the event loop.

The combining-tree half of the equivalence contract
(docs/vectorization.md): for every configuration
:mod:`repro.barrier.kernel_tree_numpy` accepts, episode summaries are
*bit-identical* to the reference event loop of
:mod:`repro.barrier.tree`, and unsupported configurations fall back to
the loop transparently.  These tests pin:

- a grid of (N, degree, A, policy) configurations shard-by-shard,
  including the degenerate single-node trees (N <= degree) and odd
  processor counts that leave the last node short,
- degraded-mode bounds (poll budgets, timeouts) across degrees — the
  hardest parity surface, because a winner that gives up mid-descent
  changes who (if anyone) writes every flag below it,
- large-N accounting: the kernel must vectorize N >= 1024 shards (one
  ``vectorized_shards`` tick each, no fallback) and still match the
  loop episode-for-episode,
- fallback accounting for configurations outside the contract
  (stateful policies, numpy unavailable),
- the ``scale1024`` registry experiment digesting identically across
  backends, and tree cache keys staying disjoint from flat ones.
"""

from __future__ import annotations

import pytest

from repro.barrier import backend as backend_mod
from repro.barrier.backend import (
    BackendUnavailableError,
    get_kernel_counters,
    reset_kernel_counters,
    resolve_backend,
    set_default_backend,
)
from repro.barrier.tree import build_tree_simulator
from repro.core.backoff import (
    AdaptiveBackoff,
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    RandomizedExponentialBackoff,
    VariableBackoff,
)
from repro.exec import payload_digest
from repro.obs.manifest import jsonable
from repro.registry import run
from tests.test_experiments import FAST_KWARGS


@pytest.fixture(autouse=True)
def _clean_backend_state():
    """Restore the backend default, override hook and counters."""
    set_default_backend(None)
    reset_kernel_counters()
    yield
    backend_mod._availability_override = None
    set_default_backend(None)
    reset_kernel_counters()


def _summaries(simulator, reps, backend):
    return [
        summary.as_tuple()
        for summary in simulator.run_shard(0, reps, backend=backend)
    ]


def _assert_parity(simulator, reps=3):
    assert _summaries(simulator, reps, "python") == _summaries(
        simulator, reps, "numpy"
    )


# -- simulator-level parity grid -----------------------------------------

GRID_POLICIES = (
    NoBackoff(),
    VariableBackoff(),
    LinearFlagBackoff(step=2),
    ExponentialFlagBackoff(base=2),
    AdaptiveBackoff(multiplier=1, flag_base=2),
)


@pytest.mark.parametrize("policy", GRID_POLICIES, ids=lambda p: repr(p))
@pytest.mark.parametrize("interval_a", (0, 7, 100, 1000))
@pytest.mark.parametrize("n", (1, 2, 5, 16, 33))
def test_uniform_grid_summaries_identical(n, interval_a, policy):
    simulator = build_tree_simulator(n, interval_a, policy, degree=4, seed=3)
    _assert_parity(simulator)


@pytest.mark.parametrize("degree", (2, 3, 8, 16))
def test_degree_grid_summaries_identical(degree):
    simulator = build_tree_simulator(
        33, 100, ExponentialFlagBackoff(base=2), degree=degree, seed=11
    )
    _assert_parity(simulator)


# -- degraded-mode bounds -------------------------------------------------


@pytest.mark.parametrize(
    "bounds",
    (
        {"poll_budget": 1},
        {"poll_budget": 3},
        {"timeout_cycles": 40},
        {"poll_budget": 5, "timeout_cycles": 200},
    ),
    ids=lambda b: ",".join(f"{k}={v}" for k, v in b.items()),
)
@pytest.mark.parametrize("degree", (2, 4))
@pytest.mark.parametrize("policy", GRID_POLICIES, ids=lambda p: repr(p))
def test_degraded_bounds_summaries_identical(policy, degree, bounds):
    simulator = build_tree_simulator(
        17, 150, policy, degree=degree, seed=7, **bounds
    )
    _assert_parity(simulator, reps=4)


# -- large-N accounting (the regime the kernel exists for) ----------------


@pytest.mark.parametrize("n", (1024, 2048))
def test_large_n_vectorizes_and_matches(n):
    simulator = build_tree_simulator(
        n, 100, AdaptiveBackoff(multiplier=1, flag_base=2), degree=4, seed=0
    )
    python = _summaries(simulator, 2, "python")
    reset_kernel_counters()
    assert _summaries(simulator, 2, "numpy") == python
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 1
    assert counters.fallback_shards == 0


def test_large_n_degraded_bounds_match():
    simulator = build_tree_simulator(
        1024, 50, NoBackoff(), degree=8, seed=5,
        poll_budget=4, timeout_cycles=3000,
    )
    _assert_parity(simulator, reps=2)


def test_shard_counter_ticks_once_per_shard():
    simulator = build_tree_simulator(64, 100, NoBackoff(), degree=4, seed=0)
    reset_kernel_counters()
    simulator.run_shard(0, 3, backend="numpy")
    simulator.run_shard(3, 6, backend="numpy")
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 2
    assert counters.fallback_shards == 0


# -- fallback accounting --------------------------------------------------


def test_stateful_policy_falls_back_but_matches():
    # Stateful policies advance their own RNG across episodes, so each
    # backend gets a fresh simulator (same seed, same episode order).
    def build():
        return build_tree_simulator(
            16, 100, RandomizedExponentialBackoff(base=2, seed=9),
            degree=4, seed=9,
        )

    python = _summaries(build(), 3, "python")
    reset_kernel_counters()
    assert _summaries(build(), 3, "numpy") == python
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 0
    assert counters.fallback_shards == 1


def test_explicit_numpy_without_numpy_errors():
    backend_mod._availability_override = False
    simulator = build_tree_simulator(8, 100, NoBackoff(), degree=4, seed=0)
    with pytest.raises(BackendUnavailableError, match=r"\[fast\]"):
        simulator.run_shard(0, 2, backend="numpy")


def test_auto_without_numpy_uses_event_loop():
    simulator = build_tree_simulator(8, 100, NoBackoff(), degree=4, seed=0)
    expected = _summaries(simulator, 3, "python")
    backend_mod._availability_override = False
    assert resolve_backend("auto") == "python"
    reset_kernel_counters()
    assert _summaries(simulator, 3, "auto") == expected
    counters = get_kernel_counters()
    assert counters.vectorized_shards == 0
    assert counters.fallback_shards == 0  # never dispatched, not a fallback


# -- experiment- and engine-level parity ----------------------------------


def test_scale1024_digests_equal_across_backends():
    kwargs = FAST_KWARGS["scale1024"]
    python_digest = payload_digest(
        jsonable(run("scale1024", backend="python", **kwargs).data)
    )
    reset_kernel_counters()
    numpy_digest = payload_digest(
        jsonable(run("scale1024", backend="numpy", **kwargs).data)
    )
    assert python_digest == numpy_digest
    assert get_kernel_counters().vectorized_shards > 0


def test_tree_cache_keys_disjoint_from_flat():
    from repro.exec.engine import PointSpec

    flat = PointSpec(
        num_processors=16, interval_a=100, policy=NoBackoff(),
        repetitions=3, seed=0,
    )
    tree = PointSpec(
        num_processors=16, interval_a=100, policy=NoBackoff(),
        repetitions=3, seed=0, tree_degree=4,
    )
    # Tree fields enter the cache address only when set, so flat points
    # keep their historical content addresses...
    assert "tree_degree" not in flat.params()
    # ...and a tree point can never collide with its flat twin.
    assert flat.params() != tree.params()
    assert tree.policy_label == "tree-4/no-backoff"


def test_sweep_tree_engine_matches_serial():
    from repro.barrier.sweep import sweep_tree

    policies = {"exp-2": ExponentialFlagBackoff(base=2)}
    serial = sweep_tree(
        (4, 16), 50, policies, degree=4, repetitions=3, seed=1
    )
    engine = sweep_tree(
        (4, 16), 50, policies, degree=4, repetitions=3, seed=1,
        jobs=1, cache=False,
    )
    for label in policies:
        assert [a.mean_accesses for a in serial[label]] == [
            a.mean_accesses for a in engine[label]
        ]
        assert [a.mean_waiting_time for a in serial[label]] == [
            a.mean_waiting_time for a in engine[label]
        ]
