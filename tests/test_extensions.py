"""Tests for the extension features: randomized backoff, tree barriers
in the scheduler, trace persistence, validation, CLI."""

import numpy as np
import pytest

from repro.barrier.simulator import simulate_barrier
from repro.barrier.validation import validate_uniform_model
from repro.core.backoff import (
    ExponentialFlagBackoff,
    RandomizedExponentialBackoff,
)
from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
from repro.trace.apps import build_app
from repro.trace.io import load_trace, save_trace
from repro.trace.program import AddressSpace, ParallelLoop, Program
from repro.trace.record import Op
from repro.trace.scheduler import PostMortemScheduler


class TestRandomizedBackoff:
    def test_wait_within_window(self):
        policy = RandomizedExponentialBackoff(base=2, seed=1)
        for polls in range(1, 12):
            wait = policy.flag_wait(polls)
            assert 1 <= wait <= 2**polls

    def test_reproducible_given_seed(self):
        a = RandomizedExponentialBackoff(base=2, seed=5)
        b = RandomizedExponentialBackoff(base=2, seed=5)
        assert [a.flag_wait(k) for k in range(1, 10)] == [
            b.flag_wait(k) for k in range(1, 10)
        ]

    def test_different_seeds_differ(self):
        a = RandomizedExponentialBackoff(base=2, seed=1)
        b = RandomizedExponentialBackoff(base=2, seed=2)
        assert [a.flag_wait(k) for k in range(1, 12)] != [
            b.flag_wait(k) for k in range(1, 12)
        ]

    def test_reseed(self):
        policy = RandomizedExponentialBackoff(base=2, seed=1)
        first = [policy.flag_wait(k) for k in range(1, 8)]
        policy.reseed(1)
        second = [policy.flag_wait(k) for k in range(1, 8)]
        assert first == second

    def test_cap_bounds_window(self):
        policy = RandomizedExponentialBackoff(base=8, cap=64, seed=0)
        assert all(policy.flag_wait(20) <= 64 for __ in range(20))

    def test_includes_variable_backoff(self):
        policy = RandomizedExponentialBackoff(base=2)
        assert policy.variable_wait(1, 16) == 15

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomizedExponentialBackoff(base=1)
        with pytest.raises(ValueError):
            RandomizedExponentialBackoff(base=2, cap=0)
        with pytest.raises(ValueError):
            RandomizedExponentialBackoff(base=2).flag_wait(0)

    def test_deterministic_beats_randomized(self):
        # The paper's Section 4.2 determinism argument.
        det = simulate_barrier(
            64, 1000, ExponentialFlagBackoff(2), repetitions=30
        )
        rnd = simulate_barrier(
            64, 1000, RandomizedExponentialBackoff(2, seed=0), repetitions=30
        )
        assert det.mean_accesses < rnd.mean_accesses


class TestSchedulerTreeBarriers:
    def make_trace(self, style, degree=3, cpus=16):
        program = Program(
            "t",
            AddressSpace(),
            [ParallelLoop("l", 24, [(Op.READ, 0x100), (Op.WRITE, 0x110)])],
        )
        return PostMortemScheduler(
            program, cpus, barrier_style=style, tree_degree=degree
        ).run()

    def test_tree_barrier_completes(self):
        trace = self.make_trace("tree")
        assert len(trace.barriers) == 1
        assert trace.barriers[0].flag_set_cycle is not None
        assert len(trace.barriers[0].arrivals) == 16

    def test_flat_and_tree_execute_same_work(self):
        flat = self.make_trace("flat")
        tree = self.make_trace("tree")
        count = lambda t: sum(1 for r in t if not r.is_sync)
        assert count(flat) == count(tree) == 48  # 24 iterations x 2 refs

    def test_tree_uses_more_sync_addresses(self):
        flat = self.make_trace("flat")
        tree = self.make_trace("tree", degree=3)
        addresses = lambda t: {r.address for r in t if r.is_sync}
        assert len(addresses(tree)) > len(addresses(flat))

    def test_tree_limits_flag_sharing(self):
        # No flag address may be polled by more than (degree - 1)
        # distinct processors in a tree barrier.
        degree = 3
        trace = self.make_trace("tree", degree=degree)
        pollers = {}
        for record in trace:
            if record.is_sync and record.op is Op.READ:
                pollers.setdefault(record.address, set()).add(record.cpu)
        assert pollers
        for address, cpus in pollers.items():
            assert len(cpus) <= degree - 1, hex(address)

    def test_tree_reduces_sync_invalidations_when_degree_below_pointers(self):
        program = build_app("SIMPLE", scale=0.15)
        flat = PostMortemScheduler(program, 32).run()
        tree = PostMortemScheduler(
            build_app("SIMPLE", scale=0.15), 32, barrier_style="tree", tree_degree=3
        ).run()

        def sync_inval(trace):
            sim = CoherenceSimulator(
                CoherenceConfig(num_cpus=32, num_pointers=4)
            )
            return sim.run(trace).sync_invalidation_pct

        assert sync_inval(tree) < sync_inval(flat) / 3

    def test_invalid_style(self):
        program = Program("t", AddressSpace(), [])
        with pytest.raises(ValueError):
            PostMortemScheduler(program, 4, barrier_style="ring")

    def test_invalid_degree(self):
        program = Program("t", AddressSpace(), [])
        with pytest.raises(ValueError):
            PostMortemScheduler(program, 4, barrier_style="tree", tree_degree=1)

    def test_single_cpu_tree(self):
        trace = self.make_trace("tree", cpus=1)
        assert trace.barriers[0].flag_set_cycle is not None


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = PostMortemScheduler(build_app("FFT", scale=0.15), 8).run()
        path = tmp_path / "fft.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.num_cpus == trace.num_cpus
        assert loaded.program_name == trace.program_name
        assert loaded.cycles == trace.cycles
        assert loaded.sync_refs == trace.sync_refs
        assert list(loaded) == list(trace)

    def test_barriers_preserved(self, tmp_path):
        trace = PostMortemScheduler(build_app("FFT", scale=0.15), 8).run()
        path = tmp_path / "fft.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.barriers) == len(trace.barriers)
        assert loaded.mean_interval_a() == trace.mean_interval_a()
        assert loaded.mean_interval_e() == trace.mean_interval_e()
        assert loaded.arrival_offsets() == trace.arrival_offsets()

    def test_loaded_trace_drives_coherence(self, tmp_path):
        trace = PostMortemScheduler(build_app("FFT", scale=0.15), 8).run()
        path = tmp_path / "fft.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = CoherenceSimulator(
            CoherenceConfig(num_cpus=8, num_pointers=2)
        ).run(trace)
        replayed = CoherenceSimulator(
            CoherenceConfig(num_cpus=8, num_pointers=2)
        ).run(loaded)
        assert replayed.total_traffic == original.total_traffic
        assert replayed.total_invalidations == original.total_invalidations

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "bad.npz"
        meta = {"version": 99, "num_cpus": 1, "program_name": "x", "cycles": 0,
                "barriers": []}
        np.savez_compressed(
            path,
            cpus=np.asarray([], dtype=np.int32),
            ops=np.asarray([], dtype=np.int8),
            addresses=np.asarray([], dtype=np.int64),
            sync=np.asarray([], dtype=np.bool_),
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_trace(path)


class TestValidation:
    def test_validation_runs(self):
        trace = PostMortemScheduler(build_app("WEATHER", scale=0.2), 8).run()
        result = validate_uniform_model(trace, repetitions=10)
        assert result.uniform.mean_accesses > 0
        assert result.empirical.mean_accesses > 0
        assert result.access_error_pct >= 0.0

    def test_agreement_when_arrivals_uniformish(self):
        trace = PostMortemScheduler(build_app("WEATHER", scale=0.2), 8).run()
        result = validate_uniform_model(trace, repetitions=20)
        assert 0.3 < result.access_ratio < 3.0

    def test_policy_forwarded(self):
        trace = PostMortemScheduler(build_app("WEATHER", scale=0.2), 8).run()
        result = validate_uniform_model(
            trace, policy=ExponentialFlagBackoff(2), repetitions=10
        )
        assert result.uniform.policy_name == "exponential-flag"

    def test_requires_barriers(self):
        from repro.trace.program import ReplicateSection
        from repro.trace.program import Program as P

        program = P("r", AddressSpace(),
                    [ReplicateSection("r", lambda cpu: [(Op.READ, 0)])])
        trace = PostMortemScheduler(program, 4).run()
        with pytest.raises(ValueError):
            validate_uniform_model(trace)


class TestCLI:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_list(self, capsys):
        assert self.run_cli("list") == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "determinism" in out

    def test_barrier_command(self, capsys):
        code = self.run_cli(
            "barrier", "--n", "8", "--interval-a", "100",
            "--policy", "exponential", "--repetitions", "5",
        )
        assert code == 0
        assert "accesses/process" in capsys.readouterr().out

    def test_trace_command(self, capsys, tmp_path):
        path = str(tmp_path / "t.npz")
        code = self.run_cli(
            "trace", "--app", "FFT", "--cpus", "8", "--scale", "0.15",
            "--save", path,
        )
        assert code == 0
        assert "sync fraction" in capsys.readouterr().out
        assert load_trace(path).num_cpus == 8

    def test_advise_command(self, capsys):
        code = self.run_cli(
            "advise", "--app", "FFT", "--cpus", "8", "--scale", "0.15",
            "--no-simulate",
        )
        assert code == 0
        assert "analytic" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        code = self.run_cli(
            "experiment", "figure5", "--repetitions", "2",
        )
        assert code == 0
        assert "Figure 5" in capsys.readouterr().out
