"""Tests for the repro.check verification subsystem.

Covers the budget/report plumbing, the schema-derived strategy
construction for every registered experiment, the runner's artifact
output, and — the critical property — that a deliberately broken
traffic counter is caught by the invariants suite with a usable
single-line repro command.
"""

import json

import pytest

from repro.check import (
    BUDGETS,
    CheckContext,
    CheckFailure,
    INVARIANT_CHECKS,
    SUITES,
    kwargs_strategy,
    resolve_budget,
    run_checks,
    run_registered_checks,
    run_repro_command,
    sample_kwargs,
    strategy_for_domain,
)
from repro.registry import UnknownExperimentError, all_specs, get_spec
from repro.sim.rng import spawn_stream


class TestBudgets:
    def test_named_profiles(self):
        for name in ("small", "default", "large"):
            budget = resolve_budget(name)
            assert budget.name == name
            assert budget is BUDGETS[name]
        assert BUDGETS["small"].cases < BUDGETS["large"].cases

    def test_integer_budget(self):
        budget = resolve_budget(3)
        assert budget.cases == 3
        assert budget.examples == 3
        assert budget.repetitions >= 8

    def test_budget_passthrough(self):
        assert resolve_budget(BUDGETS["small"]) is BUDGETS["small"]

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError, match="unknown budget"):
            resolve_budget("huge")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_budget(0)


class TestContext:
    def test_named_streams_are_independent_and_stable(self):
        ctx = CheckContext(seed=7, budget=BUDGETS["small"])
        first = ctx.rng("alpha").integers(0, 2**31)
        again = ctx.rng("alpha").integers(0, 2**31)
        other = ctx.rng("beta").integers(0, 2**31)
        assert first == again
        assert first != other

    def test_suite_repro_is_a_single_line(self):
        ctx = CheckContext(seed=3, budget=BUDGETS["small"])
        repro = ctx.suite_repro("invariants")
        assert "\n" not in repro
        assert "--suite invariants" in repro
        assert "--seed 3" in repro
        assert "--budget small" in repro


class TestSchemaStrategies:
    """Every registered experiment derives strategies from its schema."""

    def test_every_spec_builds_a_strategy(self):
        specs = all_specs()
        assert len(specs) >= 27
        for spec in specs:
            kwargs_strategy(spec)  # must not raise

    def test_no_spec_falls_back_to_const_defaults(self):
        # A const fallback means fuzzing would only ever test the
        # production default — every parameter must have a real domain
        # (name-keyed table or per-spec override).
        for spec in all_specs():
            for param in spec.params:
                domain = param.fuzz_domain()
                assert domain["type"] != "const", (
                    f"{spec.id}.{param.name} has no fuzz domain"
                )

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.id)
    def test_sampled_kwargs_are_complete_and_parseable(self, spec):
        rng = spawn_stream(0, f"test-sample:{spec.id}")
        kwargs = sample_kwargs(spec, rng)
        assert set(kwargs) == set(spec.param_names())
        # Round-trip through the CLI formatting the repro command uses.
        for name, value in kwargs.items():
            text = spec.get_param(name).format(value)
            assert spec.get_param(name).parse(text) == value

    def test_unknown_domain_type_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz domain"):
            strategy_for_domain({"type": "mystery"})

    def test_repro_command_is_one_line_and_ordered(self):
        spec = get_spec("figure5")
        rng = spawn_stream(1, "test-repro")
        kwargs = sample_kwargs(spec, rng)
        command = run_repro_command("figure5", kwargs, spec)
        assert command.startswith("PYTHONPATH=src python -m repro run figure5")
        assert "\n" not in command
        for name in kwargs:
            assert f"-p {name}=" in command


class TestRunRegisteredChecks:
    def _ctx(self):
        return CheckContext(seed=0, budget=BUDGETS["small"])

    def test_failure_keeps_the_run_alive(self):
        def passing(ctx):
            return 2

        def failing(ctx):
            raise CheckFailure("broken thing", repro="echo repro-me")

        outcomes = run_registered_checks(
            "invariants", {"b-fail": failing, "a-pass": passing}, self._ctx()
        )
        assert [o.check for o in outcomes] == ["a-pass", "b-fail"]
        assert outcomes[0].passed and outcomes[0].cases == 2
        assert not outcomes[1].passed
        assert outcomes[1].detail == "broken thing"
        assert outcomes[1].repro == "echo repro-me"

    def test_crash_becomes_failed_outcome_with_suite_repro(self):
        def crashing(ctx):
            raise RuntimeError("boom")

        outcomes = run_registered_checks(
            "differential", {"crash": crashing}, self._ctx()
        )
        assert not outcomes[0].passed
        assert "check crashed" in outcomes[0].detail
        assert "boom" in outcomes[0].detail
        assert "--suite differential" in outcomes[0].repro

    def test_failure_without_repro_gets_the_suite_repro(self):
        def failing(ctx):
            raise CheckFailure("no repro attached")

        outcomes = run_registered_checks(
            "invariants", {"f": failing}, self._ctx()
        )
        assert "--suite invariants" in outcomes[0].repro


class TestInvariantSuite:
    def test_invariants_pass_at_small_budget(self):
        report = run_checks(
            suites=["invariants"], budget="small", seed=0, out_dir=None
        )
        assert report.ok, report.render()
        assert {o.check for o in report.outcomes} == set(INVARIANT_CHECKS)
        assert all(o.cases > 0 for o in report.outcomes)

    def test_broken_traffic_counter_is_caught(self, monkeypatch):
        """The acceptance criterion: a module that under-counts retried
        accesses must fail the episode-traffic conservation law, and
        the failure must carry a single-line repro command."""
        from repro.network.module import MemoryModule

        real_request = MemoryModule.request

        def lossy_request(self, ready_time):
            grant, cost = real_request(self, ready_time)
            if cost > 1:  # drop one access per contended grant
                self.total_accesses -= 1
            return grant, cost

        monkeypatch.setattr(MemoryModule, "request", lossy_request)
        report = run_checks(
            suites=["invariants"], budget="small", seed=0, out_dir=None
        )
        assert not report.ok
        failed = {o.check for o in report.failures}
        assert "episode-traffic" in failed
        traffic = next(
            o for o in report.failures if o.check == "episode-traffic"
        )
        assert "traffic not conserved" in traffic.detail
        assert "\n" not in traffic.repro
        assert traffic.repro.startswith("PYTHONPATH=src python -m repro check")

    def test_double_grant_is_caught(self, monkeypatch):
        from repro.network.module import MemoryModule

        real_request = MemoryModule.request

        def eager_request(self, ready_time):
            grant, cost = real_request(self, ready_time)
            self.next_free = grant  # allow a second grant in this cycle
            return grant, cost

        monkeypatch.setattr(MemoryModule, "request", eager_request)
        report = run_checks(
            suites=["invariants"], budget="small", seed=0, out_dir=None
        )
        assert not report.ok
        assert "module-single-grant" in {o.check for o in report.failures}


class TestRunner:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_checks(suites=["vibes"], out_dir=None)

    def test_unknown_id_rejected_with_suggestion(self):
        with pytest.raises(UnknownExperimentError, match="did you mean"):
            run_checks(suites=["invariants"], ids=["figure55"], out_dir=None)

    def test_report_and_manifest_written(self, tmp_path):
        out = tmp_path / "checks"
        report = run_checks(
            suites=["invariants"], budget="small", seed=5, out_dir=str(out)
        )
        on_disk = json.loads((out / "report.json").read_text())
        assert on_disk == report.as_dict()
        assert on_disk["ok"] is True
        assert on_disk["seed"] == 5
        assert on_disk["checks_run"] == len(INVARIANT_CHECKS)
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["experiment_id"] == "check"
        assert manifest["config"]["suites"] == ["invariants"]
        assert report.manifest_digest
        assert manifest["counters"]["check.passed"] == len(INVARIANT_CHECKS)

    def test_suite_order_is_canonical(self):
        report = run_checks(
            suites=["differential", "invariants"], budget="small", seed=0,
            out_dir=None,
        )
        suites_seen = []
        for outcome in report.outcomes:
            if outcome.suite not in suites_seen:
                suites_seen.append(outcome.suite)
        assert suites_seen == [s for s in SUITES if s in suites_seen]
        assert suites_seen == ["invariants", "differential"]

    def test_fuzz_suite_covers_requested_ids(self):
        report = run_checks(
            suites=["fuzz"], budget="small", seed=0,
            ids=["figure4", "table1"], out_dir=None,
        )
        assert report.ok, report.render()
        assert {o.check for o in report.outcomes} == {"figure4", "table1"}

    def test_render_mentions_failures_with_repro(self):
        from repro.check.report import CheckOutcome, CheckReport

        report = CheckReport(seed=0, budget="small", suites=["invariants"])
        report.outcomes.append(
            CheckOutcome(
                suite="invariants", check="x", passed=False,
                detail="first line\nsecond line", repro="echo hi",
            )
        )
        text = report.render()
        assert "FAIL  invariants/x" in text
        assert "second line" in text
        assert "repro: echo hi" in text


class TestFuzzShrinking:
    def test_fuzzer_shrinks_to_a_minimal_config(self, monkeypatch):
        """A seeded failure must come back as shrunk kwargs plus error."""
        import repro.registry as registry
        from repro.check.fuzz import fuzz_experiment
        from repro.registry.result import ExperimentResult
        from repro.registry.spec import ExperimentSpec, Param

        spec = ExperimentSpec(
            id="_fuzz_shrink_probe",
            title="probe",
            section="test",
            summary="test-only spec, never registered",
            params=(
                Param("knob", "int", 0, fuzz={"type": "int", "lo": 0,
                                              "hi": 100}),
                Param("seed", "int", 0),
            ),
            run_point=lambda knob, seed: {"knob": knob},
            aggregate=lambda points, params: points,
        )

        def fake_run(experiment_id, **kwargs):
            if kwargs["knob"] > 3:
                raise ValueError(f"knob too hot: {kwargs['knob']}")
            return ExperimentResult(
                experiment_id, "probe", "ok", {"knob": kwargs["knob"]}
            )

        monkeypatch.setattr(registry, "run", fake_run)
        cases, failure = fuzz_experiment(spec, root_seed=0, max_examples=30)
        assert failure is not None
        shrunk, error = failure
        assert isinstance(error, ValueError)
        # hypothesis shrinks the int domain to the boundary.
        assert shrunk["knob"] == 4
        command = run_repro_command(spec.id, shrunk, spec)
        assert "-p knob=4" in command
