"""Smoke tests: every example script runs end-to-end.

Each example is executed in a subprocess at a reduced scale where the
script accepts one, so the whole file stays under a minute.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: (script, argv) — args shrink the workload where supported.  The
#: paper-scale scripts that dominate the suite's wall clock carry the
#: ``slow`` marker: ``-m "not slow"`` is the fast lane (docs/testing.md).
EXAMPLES = [
    ("quickstart.py", []),
    ("trace_driven_coherence.py", ["0.15"]),
    ("spin_vs_block.py", []),
    ("combining_tree.py", []),
    pytest.param("network_hotspot.py", [], marks=pytest.mark.slow),
    ("adaptive_selection.py", ["0.15"]),
    pytest.param("tree_saturation.py", [], marks=pytest.mark.slow),
    ("model_vs_simulation.py", []),
]

EXAMPLE_IDS = [
    entry.values[0] if hasattr(entry, "values") else entry[0]
    for entry in EXAMPLES
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=EXAMPLE_IDS)
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
    assert (
        "Reading" in completed.stdout
        or "Dir_i_NB" in completed.stdout
        or "Model" in completed.stdout
    )


def test_examples_list_is_complete():
    on_disk = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    covered = {
        entry.values[0] if hasattr(entry, "values") else entry[0]
        for entry in EXAMPLES
    }
    assert covered == on_disk, (
        "examples on disk and the smoke-test list have drifted apart"
    )
