"""Tests for the direct-mapped cache."""

import pytest

from repro.memory.cache import DirectMappedCache


def small_cache(sets=4):
    return DirectMappedCache(size_bytes=sets * 16, block_bytes=16)


class TestConstruction:
    def test_paper_defaults(self):
        cache = DirectMappedCache()
        assert cache.size_bytes == 256 * 1024
        assert cache.block_bytes == 16
        assert cache.num_sets == 16 * 1024

    def test_size_must_be_multiple_of_block(self):
        with pytest.raises(ValueError):
            DirectMappedCache(size_bytes=100, block_bytes=16)

    def test_sizes_must_be_positive(self):
        with pytest.raises(ValueError):
            DirectMappedCache(size_bytes=0)


class TestLookup:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.probe(5)
        cache.fill(5)
        assert cache.probe(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains_does_not_count(self):
        cache = small_cache()
        cache.fill(5)
        cache.contains(5)
        assert cache.hits == 0

    def test_conflict_mapping(self):
        cache = small_cache(sets=4)
        cache.fill(1)
        # Block 5 maps to the same set (5 % 4 == 1).
        evicted = cache.fill(5)
        assert evicted == (1, False)
        assert not cache.contains(1)
        assert cache.contains(5)

    def test_refill_same_block_no_eviction(self):
        cache = small_cache()
        cache.fill(3)
        assert cache.fill(3) is None


class TestDirtyState:
    def test_fill_dirty(self):
        cache = small_cache()
        cache.fill(2, dirty=True)
        assert cache.is_dirty(2)

    def test_mark_dirty_then_clean(self):
        cache = small_cache()
        cache.fill(2)
        assert not cache.is_dirty(2)
        cache.mark_dirty(2)
        assert cache.is_dirty(2)
        cache.mark_clean(2)
        assert not cache.is_dirty(2)

    def test_mark_dirty_missing_raises(self):
        cache = small_cache()
        with pytest.raises(KeyError):
            cache.mark_dirty(9)

    def test_eviction_reports_dirtiness(self):
        cache = small_cache(sets=4)
        cache.fill(1, dirty=True)
        evicted = cache.fill(5)
        assert evicted == (1, True)

    def test_is_dirty_for_absent_block(self):
        assert not small_cache().is_dirty(7)


class TestInvalidate:
    def test_invalidate_present(self):
        cache = small_cache()
        cache.fill(3, dirty=True)
        assert cache.invalidate(3)
        assert not cache.contains(3)

    def test_invalidate_absent_returns_false(self):
        assert not small_cache().invalidate(3)

    def test_invalidate_clears_dirty_bit(self):
        cache = small_cache()
        cache.fill(3, dirty=True)
        cache.invalidate(3)
        cache.fill(3)
        assert not cache.is_dirty(3)

    def test_invalidate_wrong_block_same_set(self):
        cache = small_cache(sets=4)
        cache.fill(1)
        assert not cache.invalidate(5)  # same set, different block
        assert cache.contains(1)


class TestOccupancy:
    def test_occupancy_counts(self):
        cache = small_cache(sets=4)
        cache.fill(0)
        cache.fill(1)
        assert cache.occupancy == 2
        assert sorted(cache.resident_blocks()) == [0, 1]
