"""Tests for table/series rendering."""

import pytest

from repro.analysis.figures import render_series, savings_column
from repro.analysis.tables import render_table
from repro.sim.stats import Series


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["App", "Value"], [["FFT", 1.5], ["SIMPLE", 2.25]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("App")
        assert "FFT" in lines[2]
        assert "1.50" in lines[2]

    def test_title(self):
        text = render_table(["A"], [[1]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_numeric_right_alignment(self):
        text = render_table(["Name", "N"], [["a", 5], ["bb", 500]])
        lines = text.splitlines()
        assert lines[-1].endswith("500")
        assert lines[-2].endswith("  5")

    def test_none_renders_dash(self):
        text = render_table(["A"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_format(self):
        text = render_table(["A"], [[3.14159]], float_format="%.4f")
        assert "3.1416" in text

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [[1]])

    def test_empty_headers_raises(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestRenderSeries:
    def make(self):
        a = Series(label="one")
        a.add(2, 10.0)
        a.add(4, 20.0)
        b = Series(label="two")
        b.add(2, 1.0)
        b.add(4, 2.0)
        return {"one": a, "two": b}

    def test_columns_per_curve(self):
        text = render_series(self.make())
        header = text.splitlines()[0]
        assert "N" in header
        assert "one" in header
        assert "two" in header

    def test_rows_per_x(self):
        text = render_series(self.make())
        body = text.splitlines()[2:]
        assert len(body) == 2

    def test_missing_point_dash(self):
        series = self.make()
        series["two"] = Series(label="two")
        series["two"].add(2, 1.0)  # missing x=4
        text = render_series(series)
        assert "-" in text.splitlines()[-1]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            render_series({})


class TestSavingsColumn:
    def test_percent_reduction(self):
        baseline = Series(label="base")
        baseline.add(1, 100.0)
        baseline.add(2, 200.0)
        improved = Series(label="better")
        improved.add(1, 50.0)
        improved.add(2, 20.0)
        savings = savings_column(baseline, improved)
        assert savings.y_at(1) == pytest.approx(50.0)
        assert savings.y_at(2) == pytest.approx(90.0)

    def test_skips_missing_points(self):
        baseline = Series(label="base")
        baseline.add(1, 100.0)
        baseline.add(2, 200.0)
        improved = Series(label="better")
        improved.add(1, 50.0)
        savings = savings_column(baseline, improved)
        assert len(savings) == 1

    def test_zero_baseline_skipped(self):
        baseline = Series(label="base")
        baseline.add(1, 0.0)
        improved = Series(label="better")
        improved.add(1, 5.0)
        assert len(savings_column(baseline, improved)) == 0
