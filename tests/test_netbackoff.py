"""Tests for the five Section 8 network backoff strategies."""

import pytest

from repro.network.netbackoff import (
    ALL_STRATEGIES,
    CollisionInfo,
    ConstantRoundTripBackoff,
    DepthProportionalBackoff,
    ExponentialRetryBackoff,
    ImmediateRetry,
    InverseDepthBackoff,
    QueueFeedbackBackoff,
)


def info(depth=1, stages=6, tries=1, round_trip=4, queue_length=0):
    return CollisionInfo(
        depth=depth,
        stages=stages,
        tries=tries,
        round_trip=round_trip,
        queue_length=queue_length,
    )


class TestImmediateRetry:
    def test_zero_delay_always(self):
        policy = ImmediateRetry()
        assert policy.delay(info(depth=1)) == 0
        assert policy.delay(info(depth=6, tries=50)) == 0


class TestDepthProportional:
    def test_scales_with_depth(self):
        policy = DepthProportionalBackoff(factor=3)
        assert policy.delay(info(depth=1)) == 3
        assert policy.delay(info(depth=4)) == 12

    def test_deeper_collision_waits_longer(self):
        policy = DepthProportionalBackoff()
        assert policy.delay(info(depth=5)) > policy.delay(info(depth=1))

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            DepthProportionalBackoff(factor=0)


class TestInverseDepth:
    def test_deeper_collision_waits_less(self):
        policy = InverseDepthBackoff()
        assert policy.delay(info(depth=5)) < policy.delay(info(depth=1))

    def test_collision_at_last_stage_minimal(self):
        policy = InverseDepthBackoff(factor=2)
        assert policy.delay(info(depth=6, stages=6)) == 2

    def test_never_negative(self):
        policy = InverseDepthBackoff()
        assert policy.delay(info(depth=10, stages=6)) >= 0


class TestConstantRoundTrip:
    def test_proportional_to_rtt(self):
        policy = ConstantRoundTripBackoff(multiple=2.0)
        assert policy.delay(info(round_trip=4)) == 8

    def test_minimum_one(self):
        policy = ConstantRoundTripBackoff(multiple=0.1)
        assert policy.delay(info(round_trip=4)) == 1

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            ConstantRoundTripBackoff(multiple=0)


class TestExponentialRetry:
    def test_doubles_per_try(self):
        policy = ExponentialRetryBackoff(base=2, cap=10_000)
        assert policy.delay(info(tries=1)) == 2
        assert policy.delay(info(tries=2)) == 4
        assert policy.delay(info(tries=3)) == 8

    def test_cap_applies(self):
        policy = ExponentialRetryBackoff(base=2, cap=16)
        assert policy.delay(info(tries=10)) == 16

    def test_huge_tries_do_not_overflow(self):
        policy = ExponentialRetryBackoff(base=8, cap=1024)
        assert policy.delay(info(tries=10_000)) == 1024

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ExponentialRetryBackoff(base=1)


class TestQueueFeedback:
    def test_scales_with_queue(self):
        policy = QueueFeedbackBackoff(factor=2)
        assert policy.delay(info(queue_length=0)) == 0
        assert policy.delay(info(queue_length=7)) == 14


class TestCommonProperties:
    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_nonnegative_delays(self, strategy_cls):
        policy = strategy_cls()
        for depth in (1, 3, 6):
            for tries in (1, 5, 20):
                for queue in (0, 4):
                    delay = policy.delay(
                        info(depth=depth, tries=tries, queue_length=queue)
                    )
                    assert delay >= 0

    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES)
    def test_has_name(self, strategy_cls):
        assert strategy_cls().name
