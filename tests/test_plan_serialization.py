"""RunPlan JSON round-trip properties over the whole registry.

The serve submission schema is exactly
:func:`repro.exec.plan.plan_to_json` / :func:`plan_from_json`, so this
suite is the contract behind both the HTTP API and the dedupe index:
for every registry id and any schema-valid parameter draw, serialize →
parse → serialize is a fixed point, and the parsed plan shares the
original's cache key and payload digest.  Parameter draws come from the
same schema-derived strategies as ``python -m repro check --suite
fuzz`` (:func:`repro.check.fuzz.kwargs_strategy`).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.fuzz import kwargs_strategy
from repro.exec.cache import payload_digest
from repro.exec.plan import (
    MAX_SEED,
    RunPlan,
    plan_cache_key,
    plan_from_json,
    plan_to_json,
)
from repro.registry import all_specs, get_spec

ALL_IDS = sorted(spec.id for spec in all_specs())

#: Optional plan axes beyond params: seeds, fault plans, backends.
seeds = st.one_of(st.none(), st.integers(min_value=0, max_value=MAX_SEED - 1))
fault_plans = st.sampled_from([None, "none", "stragglers", "chaos"])
backends = st.sampled_from([None, "auto", "python", "numpy"])


@pytest.mark.parametrize("experiment_id", ALL_IDS)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_roundtrip_fixed_point(experiment_id, data):
    """serialize → parse → same canonical form, cache key and digest."""
    params = data.draw(kwargs_strategy(get_spec(experiment_id)))
    plan = RunPlan(
        experiment_id,
        params=params,
        seed=data.draw(seeds),
        fault_plan=data.draw(fault_plans),
        backend=data.draw(backends),
    )

    payload = plan_to_json(plan)
    # The canonical form must survive an actual JSON wire trip.
    wire = json.loads(json.dumps(payload))
    parsed = plan_from_json(wire)

    assert plan_to_json(parsed) == payload
    assert plan_cache_key(parsed) == plan_cache_key(plan)
    assert payload_digest(plan_to_json(parsed)) == payload_digest(payload)
    # Both plans resolve to identical run_point overrides.
    assert parsed.overrides() == plan.overrides()


def test_covers_the_whole_registry():
    """The suite runs over every registered experiment id."""
    assert len(ALL_IDS) >= 27
    assert ALL_IDS == sorted(spec.id for spec in all_specs())


def test_defaults_are_omitted_and_canonical():
    lean = plan_to_json(RunPlan("figure5"))
    assert lean == {"experiment": "figure5", "params": {}}
    assert plan_from_json(lean) == RunPlan("figure5")


def test_backend_is_excluded_from_the_cache_key():
    """Backends are bit-identical, so they share one computation."""
    python_plan = RunPlan("figure5", seed=1, backend="python")
    auto_plan = RunPlan("figure5", seed=1, backend="auto")
    assert plan_cache_key(python_plan) == plan_cache_key(auto_plan)
    # ... while anything result-determining changes it.
    assert plan_cache_key(python_plan) != plan_cache_key(
        RunPlan("figure5", seed=2, backend="python")
    )
