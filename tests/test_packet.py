"""Tests for the packet-switched (buffered) multistage network."""

import pytest

from repro.network.netbackoff import ExponentialRetryBackoff, QueueFeedbackBackoff
from repro.network.packet import (
    PacketSwitchedNetwork,
    tree_saturation_sweep,
)


class TestConstruction:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            PacketSwitchedNetwork(num_ports=12)

    def test_invalid_queue_capacity(self):
        with pytest.raises(ValueError):
            PacketSwitchedNetwork(num_ports=8, queue_capacity=0)

    def test_invalid_service(self):
        with pytest.raises(ValueError):
            PacketSwitchedNetwork(num_ports=8, memory_service=0)


class TestRouting:
    def test_route_terminates_at_dest(self):
        network = PacketSwitchedNetwork(num_ports=16)
        for source in range(16):
            for dest in (0, 5, 15):
                path = network.route(source, dest)
                assert len(path) == 4
                assert path[-1] == (3, dest)

    def test_same_dest_shares_last_queue(self):
        network = PacketSwitchedNetwork(num_ports=8)
        assert network.route(1, 6)[-1] == network.route(4, 6)[-1]


class TestRunBasics:
    def test_zero_injection_nothing_happens(self):
        network = PacketSwitchedNetwork(num_ports=8)
        result = network.run(horizon=100, injection_rate=0.0, hot_fraction=0.0)
        assert result.injected == 0
        assert result.delivered == 0

    def test_light_uniform_traffic_all_delivered(self):
        network = PacketSwitchedNetwork(num_ports=8)
        result = network.run(horizon=2000, injection_rate=0.05, hot_fraction=0.0)
        assert result.injected > 0
        # Nearly everything injected is delivered (minus in-flight tail).
        assert result.delivered >= result.injected * 0.9
        assert result.blocked_fraction < 0.05

    def test_latency_at_least_stage_count(self):
        network = PacketSwitchedNetwork(num_ports=8)
        result = network.run(horizon=2000, injection_rate=0.05, hot_fraction=0.0)
        assert result.latency_cold.minimum >= network.num_stages

    def test_invalid_run_parameters(self):
        network = PacketSwitchedNetwork(num_ports=8)
        with pytest.raises(ValueError):
            network.run(horizon=0, injection_rate=0.1, hot_fraction=0.0)
        with pytest.raises(ValueError):
            network.run(horizon=10, injection_rate=1.5, hot_fraction=0.0)
        with pytest.raises(ValueError):
            network.run(horizon=10, injection_rate=0.1, hot_fraction=-0.1)

    def test_reproducible(self):
        a = PacketSwitchedNetwork(8).run(500, 0.3, 0.1, seed=4)
        b = PacketSwitchedNetwork(8).run(500, 0.3, 0.1, seed=4)
        assert a.delivered == b.delivered
        assert a.injection_blocked == b.injection_blocked


class TestTreeSaturation:
    def test_hot_traffic_collapses_cold_bandwidth(self):
        results = tree_saturation_sweep(
            num_ports=16,
            hot_fractions=(0.0, 0.2),
            injection_rate=0.4,
            horizon=2000,
        )
        assert results[0.2].cold_throughput < results[0.0].cold_throughput * 0.7

    def test_hot_module_saturates(self):
        results = tree_saturation_sweep(
            num_ports=16,
            hot_fractions=(0.2,),
            injection_rate=0.4,
            horizon=2000,
        )
        # The hot module serves ~1 packet/cycle at saturation.
        assert results[0.2].hot_throughput > 0.7

    def test_blocking_rises_with_hot_fraction(self):
        results = tree_saturation_sweep(
            num_ports=16,
            hot_fractions=(0.0, 0.2),
            injection_rate=0.4,
            horizon=2000,
        )
        assert results[0.2].blocked_fraction > results[0.0].blocked_fraction

    def test_proactive_feedback_cuts_cold_latency(self):
        base = tree_saturation_sweep(
            num_ports=16, hot_fractions=(0.2,), horizon=2000
        )[0.2]
        throttled = tree_saturation_sweep(
            num_ports=16,
            hot_fractions=(0.2,),
            horizon=2000,
            backoff=QueueFeedbackBackoff(factor=2),
            proactive=True,
        )[0.2]
        assert throttled.latency_cold.mean < base.latency_cold.mean

    def test_reactive_backoff_changes_little(self):
        base = tree_saturation_sweep(
            num_ports=16, hot_fractions=(0.2,), horizon=2000
        )[0.2]
        reactive = tree_saturation_sweep(
            num_ports=16,
            hot_fractions=(0.2,),
            horizon=2000,
            backoff=ExponentialRetryBackoff(base=2, cap=64),
        )[0.2]
        # Throughput within 20%: the bottleneck is the hot module.
        assert reactive.cold_throughput == pytest.approx(
            base.cold_throughput, rel=0.2
        )

    def test_queue_length_signal_exposed(self):
        network = PacketSwitchedNetwork(num_ports=8)
        assert network.dest_queue_length(0) == 0
        network.run(horizon=200, injection_rate=0.5, hot_fraction=0.5)
        # After a saturating run the hot queue is non-empty.
        assert network.dest_queue_length(0) >= 1
