"""Tests for the fault-injection subsystem (repro.faults).

Three properties anchor everything here:

1. **Inertness** — with no plan installed (or the empty "none" plan)
   every simulator produces bit-identical results to a build without
   the subsystem; the regression goldens pin this.
2. **Determinism** — the same (spec, seed) yields the same fault
   schedule, the same perturbed results, and the same checkpoint
   digests, independent of execution order or resume boundaries.
3. **Resilience** — crashes, timeouts, and interrupts surface as
   retries / FAILED records / resumable checkpoints, never as hangs.
"""

import json
import os

import pytest

from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.faults import (
    CheckpointMismatchError,
    CheckpointStore,
    EventJitterInjector,
    FaultPlan,
    FlakyFlagInjector,
    GRANT_DROP,
    GRANT_DUP,
    GRANT_OK,
    GrantFaultInjector,
    ModuleOutageInjector,
    PointRecord,
    StragglerInjector,
    clear_fault_plan,
    fault_injection,
    get_fault_plan,
    install_fault_plan,
    parse_plan,
    run_resilient_sweep,
)
from repro.faults.runner import COMPLETED, DEGRADED, FAILED, build_point_plan
from repro.sim.rng import spawn_stream


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no plan installed."""
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestRegistry:
    def test_no_plan_by_default(self):
        assert get_fault_plan() is None

    def test_install_and_uninstall(self):
        plan = FaultPlan([])
        assert install_fault_plan(plan) is plan
        assert get_fault_plan() is plan
        install_fault_plan(None)
        assert get_fault_plan() is None

    def test_context_manager_restores(self):
        outer = FaultPlan([], name="outer")
        install_fault_plan(outer)
        with fault_injection(FaultPlan([], name="inner")) as inner:
            assert get_fault_plan() is inner
        assert get_fault_plan() is outer

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_injection(FaultPlan([])):
                raise RuntimeError("boom")
        assert get_fault_plan() is None


class TestInjectors:
    def test_straggler_deterministic_per_episode(self):
        def delays(tag):
            injector = StragglerInjector(probability=0.5, scale=100)
            plan = FaultPlan([injector], seed=11)
            plan.begin_episode(tag)
            return [injector.arrival_delay(cpu, 16, 0) for cpu in range(16)]

        assert delays("a") == delays("a")
        assert delays("a") != delays("b")

    def test_straggler_delay_capped(self):
        injector = StragglerInjector(probability=1.0, scale=10**9, cap=50)
        FaultPlan([injector], seed=3).begin_episode()
        assert all(
            0 <= injector.arrival_delay(cpu, 8, 0) <= 50 for cpu in range(8)
        )

    def test_outage_windows_periodic(self):
        injector = ModuleOutageInjector(
            module="barrier-flag", start=10, length=5, period=100, repeats=3
        )
        assert list(injector.module_windows("barrier-flag")) == [
            (10, 15), (110, 115), (210, 215),
        ]
        assert list(injector.module_windows("barrier-variable")) == []

    def test_zero_length_outage_yields_nothing(self):
        injector = ModuleOutageInjector(module="*", start=10, length=0)
        assert list(injector.module_windows("anything")) == []

    def test_grant_injector_rejects_certain_drop(self):
        with pytest.raises(ValueError):
            GrantFaultInjector(drop=1.0)

    def test_grant_injector_rejects_overfull_probabilities(self):
        with pytest.raises(ValueError):
            GrantFaultInjector(drop=0.6, dup=0.5)

    def test_grant_outcomes_deterministic(self):
        def outcomes():
            injector = GrantFaultInjector(drop=0.3, dup=0.3)
            FaultPlan([injector], seed=5).begin_episode()
            return [injector.grant_outcome("s", 0, t) for t in range(64)]

        first, second = outcomes(), outcomes()
        assert first == second
        assert set(first) >= {GRANT_OK, GRANT_DROP, GRANT_DUP}

    def test_flaky_rejects_certain_failure(self):
        with pytest.raises(ValueError):
            FlakyFlagInjector(probability=1.0)

    def test_jitter_bounded(self):
        injector = EventJitterInjector(probability=1.0, max_jitter=3)
        FaultPlan([injector], seed=9).begin_episode()
        assert all(0 <= injector.event_jitter(t) <= 3 for t in range(32))


class TestFaultPlan:
    def test_counts_accumulate(self):
        plan = FaultPlan([])
        plan.count("x")
        plan.count("x", 4)
        assert plan.fault_counts == {"x": 5}
        assert plan.total_injected == 5
        assert plan.snapshot() == {"x": 5}

    def test_snapshot_is_a_copy(self):
        plan = FaultPlan([])
        plan.count("x")
        snap = plan.snapshot()
        snap["x"] = 99
        assert plan.fault_counts["x"] == 1

    def test_dispatch_sums_delays(self):
        class Two(StragglerInjector):
            def arrival_delay(self, cpu, n, time):
                return 2

        plan = FaultPlan([Two(), Two()], seed=0)
        plan.begin_episode()
        assert plan.arrival_delay(0, 4, 0) == 4
        assert plan.fault_counts["arrival.delay_cycles"] == 4

    def test_first_non_ok_grant_wins(self):
        class Drop(GrantFaultInjector):
            def grant_outcome(self, site, actor, time):
                return GRANT_DROP

        class Dup(GrantFaultInjector):
            def grant_outcome(self, site, actor, time):
                return GRANT_DUP

        plan = FaultPlan([Drop(), Dup()], seed=0)
        plan.begin_episode()
        assert plan.grant_outcome("s", 0, 0) == GRANT_DROP
        assert plan.fault_counts == {"grant.drop": 1}


class TestSpecParsing:
    def test_named_plans_all_parse(self):
        from repro.faults.spec import NAMED_PLANS

        for name in NAMED_PLANS:
            plan = parse_plan(name, seed=1)
            assert plan.name == name

    def test_empty_spec_is_empty_plan(self):
        plan = parse_plan("", seed=0)
        assert list(plan.injectors) == []
        assert plan.poll_budget is None

    def test_custom_spec(self):
        plan = parse_plan(
            "stragglers:probability=0.5,scale=10;grants:drop=0.1", seed=2
        )
        assert plan.name == "custom"
        assert len(plan.injectors) == 2
        assert isinstance(plan.injectors[0], StragglerInjector)
        assert plan.injectors[0].probability == 0.5

    def test_degrade_clause_sets_plan_knobs(self):
        plan = parse_plan("degrade:polls=64,timeout=5000", seed=0)
        assert plan.poll_budget == 64
        assert plan.timeout_cycles == 5000
        assert list(plan.injectors) == []

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError, match="unknown injector 'bogus'"):
            parse_plan("bogus:probability=0.5")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_plan("stragglers:probability")

    def test_bad_constructor_parameter_rejected(self):
        with pytest.raises(ValueError, match="bad parameters"):
            parse_plan("stragglers:no_such_knob=1")

    def test_unknown_degrade_knob_rejected(self):
        with pytest.raises(ValueError, match="degrade clause"):
            parse_plan("degrade:wibble=1")


GOLDEN_MEAN_ACCESSES = 9.0875  # pinned by tests/test_regression_goldens.py


def _golden_run():
    from repro.barrier.simulator import simulate_barrier

    return simulate_barrier(
        16, 500, ExponentialFlagBackoff(2), repetitions=5, seed=0
    )


class TestBitIdentityWithoutFaults:
    def test_no_plan_matches_golden(self):
        assert _golden_run().mean_accesses == GOLDEN_MEAN_ACCESSES

    def test_empty_plan_matches_golden(self):
        # An installed-but-empty plan must not perturb results either.
        with fault_injection(parse_plan("none", seed=0)):
            aggregate = _golden_run()
        assert aggregate.mean_accesses == GOLDEN_MEAN_ACCESSES


class TestFaultsPerturbDeterministically:
    def test_chaos_changes_results_reproducibly(self):
        def run():
            with fault_injection(parse_plan("chaos", seed=42)) as plan:
                aggregate = _golden_run()
            return aggregate.mean_accesses, plan.snapshot()

        first, second = run(), run()
        assert first == second
        accesses, counts = first
        assert accesses != GOLDEN_MEAN_ACCESSES
        assert counts["arrival.stragglers"] > 0

    def test_different_seeds_differ(self):
        def run(seed):
            with fault_injection(parse_plan("chaos", seed=seed)):
                return _golden_run().mean_accesses

        assert run(1) != run(2)

    def test_outage_plan_charges_outage_cycles(self):
        with fault_injection(parse_plan("hot-module", seed=7)) as plan:
            _golden_run()
        assert plan.fault_counts["module.outage_windows"] > 0


class TestDegradedBarrier:
    def test_poll_budget_reports_partial_arrival(self):
        from repro.barrier.simulator import BarrierSimulator
        from repro.core.barrier import TangYewBarrier

        # A tiny poll budget with no backoff: late arrivals exhaust it
        # and depart as timed out instead of polling forever.
        barrier = TangYewBarrier(8, NoBackoff(), poll_budget=2)
        simulator = BarrierSimulator(barrier, seed=3)
        result = simulator.run_once(spawn_stream(3, "episode"))
        assert result.timed_out
        assert result.degraded
        # Timed-out CPUs are real, distinct processor indices.
        assert len(set(result.timed_out)) == len(result.timed_out)
        assert all(0 <= cpu < 8 for cpu in result.timed_out)

    def test_no_budget_means_no_timeouts(self):
        result = _golden_run()
        assert result.degraded_runs == 0
        assert result.timed_out_processes == 0

    def test_poll_budget_validated(self):
        from repro.core.barrier import TangYewBarrier

        with pytest.raises(ValueError):
            TangYewBarrier(4, NoBackoff(), poll_budget=0)
        with pytest.raises(ValueError):
            TangYewBarrier(4, NoBackoff(), timeout_cycles=0)

    def test_plan_level_degrade_counts_partial_arrivals(self):
        from repro.barrier.simulator import simulate_barrier

        with fault_injection(parse_plan("degrade:polls=2", seed=0)) as plan:
            simulate_barrier(8, 2000, NoBackoff(), repetitions=2, seed=0)
        assert plan.fault_counts.get("barrier.partial_arrival", 0) > 0


class TestBoundedLocks:
    def test_lock_abort_reports_degraded(self):
        from repro.barrier.resource import simulate_resource
        from repro.core.locks import TestAndSetLock

        lock = TestAndSetLock(max_attempts=1)
        aggregate = simulate_resource(
            8, lock, hold_time=50, repetitions=1, seed=0
        )
        # With one attempt allowed and long holds, somebody gave up;
        # the run still terminates and aggregates.
        assert aggregate.mean_accesses > 0

    def test_max_attempts_validated(self):
        from repro.core.locks import BackoffLock

        with pytest.raises(ValueError):
            BackoffLock(hold_time=8, max_attempts=0)


class TestSweepRunner:
    @staticmethod
    def _ok_point(key):
        return lambda: PointRecord(key=key, status=COMPLETED, data={"v": key})

    def test_all_points_complete(self):
        points = {k: self._ok_point(k) for k in ("a", "b", "c")}
        records, resumed, retried, interrupted = run_resilient_sweep(points)
        assert sorted(records) == ["a", "b", "c"]
        assert (resumed, retried, interrupted) == (0, 0, False)

    def test_existing_records_resumed_not_recomputed(self):
        ran = []

        def point():
            ran.append(1)
            return PointRecord(key="a", status=COMPLETED)

        prior = PointRecord(key="a", status=COMPLETED)
        records, resumed, __, __ = run_resilient_sweep(
            {"a": point}, existing={"a": prior}
        )
        assert ran == []
        assert resumed == 1
        assert records["a"] is prior

    def test_failed_prior_records_are_retried(self):
        prior = PointRecord(key="a", status=FAILED)
        records, resumed, __, __ = run_resilient_sweep(
            {"a": self._ok_point("a")}, existing={"a": prior}
        )
        assert resumed == 0
        assert records["a"].status == COMPLETED

    def test_crashing_point_retried_then_failed(self):
        calls = []

        def crash():
            calls.append(1)
            raise RuntimeError("kaboom")

        slept = []
        records, __, retried, __ = run_resilient_sweep(
            {"a": crash}, max_retries=2, retry_backoff_seconds=0.5,
            sleep=slept.append,
        )
        assert len(calls) == 3  # initial + 2 retries
        assert retried == 2
        assert slept == [0.5, 1.0]  # exponential backoff
        assert records["a"].status == FAILED
        assert "kaboom" in records["a"].error

    def test_transient_crash_recovers(self):
        state = {"left": 1}

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise RuntimeError("transient")
            return PointRecord(key="a", status=COMPLETED)

        records, __, retried, __ = run_resilient_sweep(
            {"a": flaky}, retry_backoff_seconds=0, sleep=lambda _t: None
        )
        assert records["a"].status == COMPLETED
        assert records["a"].attempts >= 1
        assert retried == 1

    def test_max_points_interrupts(self):
        points = {k: self._ok_point(k) for k in ("a", "b", "c")}
        records, __, __, interrupted = run_resilient_sweep(
            points, max_points=2
        )
        assert interrupted
        assert len(records) == 2

    def test_keyboard_interrupt_stops_cleanly(self):
        def interrupt():
            raise KeyboardInterrupt

        done = []
        points = {
            "a": self._ok_point("a"),
            "b": interrupt,
            "c": lambda: done.append(1),
        }
        records, __, __, interrupted = run_resilient_sweep(points)
        assert interrupted
        assert done == []
        assert list(records) == ["a"]

    def test_timeout_produces_failed_record(self):
        import time as _time

        def slow():
            _time.sleep(5)
            return PointRecord(key="a", status=COMPLETED)

        records, __, __, __ = run_resilient_sweep(
            {"a": slow}, timeout_seconds=0.05, max_retries=0
        )
        assert records["a"].status == FAILED
        assert "PointTimeoutError" in records["a"].error


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.write_meta({"config_digest": "d1"})
        record = PointRecord(
            key="N=16", status=COMPLETED, data={"x": 1},
            fault_counts={"grant.drop": 2},
        )
        store.save_point(record)
        loaded = CheckpointStore(str(tmp_path / "ck")).load("d1")
        assert loaded["N=16"].data == {"x": 1}
        assert loaded["N=16"].fault_counts == {"grant.drop": 2}

    def test_digest_mismatch_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.write_meta({"config_digest": "d1"})
        store.save_point(PointRecord(key="a", status=COMPLETED))
        with pytest.raises(CheckpointMismatchError):
            store.load("d2")

    def test_missing_directory_loads_empty(self, tmp_path):
        assert CheckpointStore(str(tmp_path / "nope")).load("d") == {}

    def test_torn_point_file_skipped(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.write_meta({"config_digest": "d1"})
        store.save_point(PointRecord(key="good", status=COMPLETED))
        torn = os.path.join(store.directory, "points", "torn.json")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "sta')  # crash mid-write
        loaded = store.load("d1")
        assert list(loaded) == ["good"]

    def test_tampered_record_skipped(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.write_meta({"config_digest": "d1"})
        path = store.save_point(
            PointRecord(key="a", status=COMPLETED, data={"x": 1})
        )
        payload = json.loads(open(path, encoding="utf-8").read())
        payload["data"] = {"x": 999}  # digest no longer matches
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert store.load("d1") == {}

    def test_clear(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.write_meta({"config_digest": "d1"})
        store.save_point(PointRecord(key="a", status=COMPLETED))
        store.clear()
        assert store.load("anything") == {}


class TestExperimentPoints:
    def test_figure5_splits_on_n(self):
        from repro.analysis.experiments import experiment_points

        points = experiment_points("figure5", repetitions=1)
        assert all(key.startswith("N=") for key in points)
        assert all(
            len(kwargs["n_values"]) == 1 for kwargs in points.values()
        )

    def test_override_narrows_sweep(self):
        from repro.analysis.experiments import experiment_points

        points = experiment_points("figure5", n_values=(4, 8), repetitions=1)
        assert sorted(points) == ["N=4", "N=8"]

    def test_empty_axis_rejected(self):
        from repro.analysis.experiments import experiment_points

        with pytest.raises(ValueError):
            experiment_points("figure5", n_values=())

    def test_unknown_experiment_rejected(self):
        from repro.analysis.experiments import experiment_points

        with pytest.raises(KeyError, match="unknown experiment"):
            experiment_points("figure99")


class TestEndToEndResilience:
    def _run(self, tmp_path, **kwargs):
        from repro.faults.runner import run_experiment_resilient

        defaults = dict(
            plan_spec="chaos",
            seed=7,
            checkpoint_dir=str(tmp_path / "ck"),
            n_values=(4, 8, 16),
            repetitions=1,
        )
        defaults.update(kwargs)
        return run_experiment_resilient("figure5", **defaults)

    def test_interrupted_sweep_resumes_completely(self, tmp_path):
        first = self._run(tmp_path, max_points=1)
        assert first.interrupted
        assert first.completed + first.degraded == 1

        second = self._run(tmp_path)
        assert not second.interrupted
        assert second.resumed == 1
        assert second.remaining == 0
        assert second.ok

        # Resume equals an uninterrupted fresh run, point for point.
        fresh = self._run(tmp_path, checkpoint_dir=str(tmp_path / "ck2"))
        for key, record in fresh.records.items():
            assert second.records[key].data == record.data
            assert second.records[key].fault_counts == record.fault_counts

    def test_point_plans_deterministic_by_key(self):
        plan_a = build_point_plan("chaos", 7, "figure5", "N=8")
        plan_b = build_point_plan("chaos", 7, "figure5", "N=8")
        plan_c = build_point_plan("chaos", 7, "figure5", "N=16")
        assert plan_a.seed == plan_b.seed
        assert plan_a.seed != plan_c.seed

    def test_bad_plan_spec_rejected_before_sweep(self, tmp_path):
        # A typo'd spec is one usage error, not N failed points — and
        # it must not leave a checkpoint behind that blocks the
        # corrected rerun.
        with pytest.raises(ValueError, match="unknown injector"):
            self._run(tmp_path, plan_spec="choas")
        assert not (tmp_path / "ck").exists()
        assert self._run(tmp_path).ok

    def test_changed_config_detected(self, tmp_path):
        self._run(tmp_path)
        with pytest.raises(CheckpointMismatchError):
            self._run(tmp_path, seed=8)

    def test_fresh_discards_stale_checkpoint(self, tmp_path):
        self._run(tmp_path)
        summary = self._run(tmp_path, seed=8, fresh=True)
        assert summary.resumed == 0
        assert summary.ok

    def test_render_mentions_failures(self):
        from repro.faults.runner import ResilienceSummary

        summary = ResilienceSummary(
            experiment_id="figure5",
            plan_name="chaos",
            total_points=2,
            records={
                "a": PointRecord(key="a", status=COMPLETED),
                "b": PointRecord(key="b", status=FAILED, error="E: boom"),
            },
        )
        text = summary.render()
        assert "failed     : 1" in text
        assert "boom" in text
        assert not summary.ok


class TestFaultsCliCommand:
    def test_cli_smoke_and_resume(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "faults", "figure5", "--plan", "stragglers", "--seed", "3",
            "--repetitions", "1",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(argv + ["--max-points", "2"]) == 0
        first = capsys.readouterr().out
        assert "interrupted: yes" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 resumed from checkpoint" in second
        assert "interrupted" not in second

    def test_cli_reports_config_mismatch(self, tmp_path, capsys):
        from repro.__main__ import main

        base = [
            "faults", "figure5", "--repetitions", "1",
            "--checkpoint-dir", str(tmp_path / "ck"), "--max-points", "1",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "9"]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()


class TestRetryPolicyPlumbing:
    """The sweep's retry waits follow the repo's own backoff policies."""

    def test_linear_policy_shapes_the_wait_schedule(self):
        from repro.exec.supervisor import RetryPolicy

        def crash():
            raise RuntimeError("kaboom")

        slept = []
        run_resilient_sweep(
            {"a": crash}, max_retries=3, sleep=slept.append,
            retry_policy=RetryPolicy.from_spec("linear", base_seconds=0.5),
        )
        assert slept == pytest.approx([0.5, 1.0, 1.5])

    def test_none_policy_retries_immediately(self):
        from repro.exec.supervisor import RetryPolicy

        def crash():
            raise RuntimeError("kaboom")

        slept = []
        run_resilient_sweep(
            {"a": crash}, max_retries=2, sleep=slept.append,
            retry_policy=RetryPolicy.from_spec("none"),
        )
        assert slept == [0.0, 0.0]

    def test_experiment_accepts_named_policy(self, tmp_path):
        from repro.faults.runner import run_experiment_resilient

        summary = run_experiment_resilient(
            "figure5", seed=1, checkpoint_dir=str(tmp_path / "ck"),
            n_values=(4,), repetitions=1, retry_policy="linear:step=2",
        )
        assert summary.ok

    def test_experiment_rejects_bad_policy_before_sweep(self, tmp_path):
        from repro.faults.runner import run_experiment_resilient

        with pytest.raises(ValueError, match="retry policy"):
            run_experiment_resilient(
                "figure5", seed=1, checkpoint_dir=str(tmp_path / "ck"),
                n_values=(4,), repetitions=1, retry_policy="polynomial",
            )
        # One usage error, not a half-written checkpoint.
        assert not (tmp_path / "ck").exists()


class TestParallelWorkerDeath:
    """A SIGKILLed worker never loses or perturbs a faults sweep."""

    def test_parallel_sweep_survives_worker_death_bit_identically(
        self, tmp_path
    ):
        import warnings

        from repro.exec.context import get_stats, reset_stats
        from repro.exec.supervisor import ChaosPlan, chaos_injection
        from repro.faults.runner import run_experiment_resilient

        common = dict(
            plan_spec="stragglers", seed=7, n_values=(4, 8), repetitions=1,
        )
        serial = run_experiment_resilient(
            "figure5", checkpoint_dir=str(tmp_path / "serial"), **common
        )
        reset_stats()
        with chaos_injection(ChaosPlan(kill_workers=1)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                survived = run_experiment_resilient(
                    "figure5", checkpoint_dir=str(tmp_path / "chaos"),
                    jobs=2, **common,
                )
        assert survived.ok
        assert get_stats().worker_deaths >= 1
        assert serial.records.keys() == survived.records.keys()
        for key in serial.records:
            assert (
                serial.records[key].to_dict()["digest"]
                == survived.records[key].to_dict()["digest"]
            )
