"""Tests for the backoff policy hierarchy."""

import pytest

from repro.core.backoff import (
    AdaptiveBackoff,
    ExponentialFlagBackoff,
    LinearFlagBackoff,
    NoBackoff,
    ProportionalBackoff,
    ThresholdQueueBackoff,
    VariableBackoff,
    paper_policies,
)


class TestNoBackoff:
    def test_all_waits_zero(self):
        policy = NoBackoff()
        assert policy.variable_wait(1, 64) == 0
        assert policy.flag_wait(5) == 0
        assert not policy.should_queue(100)


class TestVariableBackoff:
    def test_waits_remaining_processors(self):
        policy = VariableBackoff()
        # i of N arrived: wait N - i.
        assert policy.variable_wait(1, 64) == 63
        assert policy.variable_wait(63, 64) == 1

    def test_last_processor_waits_zero(self):
        assert VariableBackoff().variable_wait(64, 64) == 0

    def test_multiplier_variant(self):
        # The paper's (N - i) * C.
        policy = VariableBackoff(multiplier=3)
        assert policy.variable_wait(60, 64) == 12

    def test_offset_variant(self):
        # The paper's (N - i) + C.
        policy = VariableBackoff(offset=5)
        assert policy.variable_wait(60, 64) == 9

    def test_no_flag_backoff(self):
        assert VariableBackoff().flag_wait(10) == 0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            VariableBackoff(multiplier=-1)


class TestLinearFlagBackoff:
    def test_linear_growth(self):
        policy = LinearFlagBackoff(step=3)
        assert policy.flag_wait(1) == 3
        assert policy.flag_wait(4) == 12

    def test_includes_variable_backoff(self):
        policy = LinearFlagBackoff(step=2)
        assert policy.variable_wait(1, 64) == 63

    def test_polls_must_be_positive(self):
        with pytest.raises(ValueError):
            LinearFlagBackoff().flag_wait(0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            LinearFlagBackoff(step=0)


class TestExponentialFlagBackoff:
    @pytest.mark.parametrize("base", [2, 4, 8])
    def test_powers_of_base(self, base):
        policy = ExponentialFlagBackoff(base=base)
        assert policy.flag_wait(1) == base
        assert policy.flag_wait(2) == base * base
        assert policy.flag_wait(3) == base**3

    def test_cap(self):
        policy = ExponentialFlagBackoff(base=2, cap=100)
        assert policy.flag_wait(20) == 100

    def test_no_overflow_with_many_polls(self):
        policy = ExponentialFlagBackoff(base=8, cap=1 << 20)
        assert policy.flag_wait(10_000) == 1 << 20

    def test_includes_variable_backoff(self):
        assert ExponentialFlagBackoff(base=2).variable_wait(32, 64) == 32

    def test_variable_part_can_be_disabled(self):
        policy = ExponentialFlagBackoff(base=2, multiplier=0)
        assert policy.variable_wait(1, 64) == 0

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ExponentialFlagBackoff(base=1)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            ExponentialFlagBackoff(base=2, cap=0)


class TestThresholdQueueBackoff:
    def test_delegates_waits(self):
        inner = ExponentialFlagBackoff(base=2)
        policy = ThresholdQueueBackoff(inner, threshold=1000)
        assert policy.flag_wait(3) == 8
        assert policy.variable_wait(1, 8) == 7

    def test_queues_when_wait_crosses_threshold(self):
        inner = ExponentialFlagBackoff(base=2)
        policy = ThresholdQueueBackoff(inner, threshold=16)
        assert not policy.should_queue(3)  # wait 8
        assert policy.should_queue(4)  # wait 16

    def test_never_queues_with_no_backoff_inner(self):
        policy = ThresholdQueueBackoff(NoBackoff(), threshold=1)
        assert not policy.should_queue(1_000_000)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdQueueBackoff(NoBackoff(), threshold=0)


class TestProportionalBackoff:
    def test_proportional_to_waiters(self):
        policy = ProportionalBackoff(hold_time=10)
        assert policy.resource_wait(0) == 0
        assert policy.resource_wait(5) == 50

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ProportionalBackoff(hold_time=0)
        with pytest.raises(ValueError):
            ProportionalBackoff(hold_time=2).resource_wait(-1)


class TestAdaptiveBackoff:
    def test_exponential_configuration(self):
        policy = AdaptiveBackoff(flag_base=4)
        assert policy.flag_wait(2) == 16
        assert policy.variable_wait(1, 8) == 7

    def test_linear_configuration(self):
        policy = AdaptiveBackoff(flag_step=5)
        assert policy.flag_wait(3) == 15

    def test_plain_configuration(self):
        policy = AdaptiveBackoff()
        assert policy.flag_wait(9) == 0

    def test_queue_threshold(self):
        policy = AdaptiveBackoff(flag_base=2, queue_threshold=8)
        assert not policy.should_queue(2)
        assert policy.should_queue(3)

    def test_no_threshold_never_queues(self):
        policy = AdaptiveBackoff(flag_base=2)
        assert not policy.should_queue(50)

    def test_exponential_and_linear_exclusive(self):
        with pytest.raises(ValueError):
            AdaptiveBackoff(flag_base=2, flag_step=3)

    def test_invalid_flag_base(self):
        with pytest.raises(ValueError):
            AdaptiveBackoff(flag_base=1)


class TestPaperPolicies:
    def test_five_curves(self):
        policies = paper_policies()
        assert len(policies) == 5
        assert "Without Backoff" in policies

    def test_flag_bases(self):
        policies = paper_policies()
        assert policies["Base 2 Backoff on Barrier Flag"].base == 2
        assert policies["Base 4 Backoff on Barrier Flag"].base == 4
        assert policies["Base 8 Backoff on Barrier Flag"].base == 8

    def test_fresh_instances_each_call(self):
        assert (
            paper_policies()["Without Backoff"]
            is not paper_policies()["Without Backoff"]
        )
