"""Scenario matrices: validation, expansion, digests, reports, CLI."""

import importlib.util
import json
import os

import pytest

from repro.__main__ import main
from repro.registry import ParameterError, UnknownExperimentError
from repro.scenario import (
    ScenarioError,
    diff_reports,
    expand,
    load_report,
    load_scenario,
    parse_scenario,
    render_diff,
    run_scenario,
    scenario_report,
    write_report,
)
from repro.scenario.report import regressions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A miniature valid scenario reused across tests: 2x2 determinism
#: cells plus one fault-plan cell.
TINY = {
    "name": "tiny",
    "description": "test matrix",
    "blocks": [
        {
            "experiment": "determinism",
            "params": {"repetitions": 3, "points": [[2, 0]]},
            "axes": {"base": [2, 4], "seed": [0, 1]},
        },
        {
            "experiment": "figure5",
            "params": {"repetitions": 1, "n_values": [2]},
            "fault_plan": "stragglers:probability=0.2",
            "seed": 0,
        },
    ],
}


class TestParsing:
    def test_valid_scenario_parses(self):
        spec = parse_scenario(TINY)
        assert spec.name == "tiny"
        assert spec.cell_count() == 5

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            parse_scenario({**TINY, "matrix": []})

    def test_unknown_block_key(self):
        bad = {**TINY, "blocks": [{"experiment": "figure5", "grid": {}}]}
        with pytest.raises(ScenarioError, match="unknown key"):
            parse_scenario(bad)

    def test_unknown_experiment_uses_registry_error(self):
        bad = {**TINY, "blocks": [{"experiment": "figure99"}]}
        with pytest.raises(UnknownExperimentError, match="did you mean"):
            parse_scenario(bad)

    def test_unknown_axis_uses_param_schema_error(self):
        bad = {
            **TINY,
            "blocks": [{"experiment": "figure5", "axes": {"bogus": [1]}}],
        }
        with pytest.raises(ParameterError, match="bogus"):
            parse_scenario(bad)

    def test_empty_axis_rejected(self):
        bad = {
            **TINY,
            "blocks": [{"experiment": "figure5", "axes": {"n_values": []}}],
        }
        with pytest.raises(ScenarioError, match="empty"):
            parse_scenario(bad)

    def test_zip_length_mismatch(self):
        bad = {
            **TINY,
            "blocks": [
                {
                    "experiment": "determinism",
                    "zip": {"base": [2, 4], "seed": [0]},
                }
            ],
        }
        with pytest.raises(ScenarioError, match="share one length"):
            parse_scenario(bad)

    def test_duplicate_assignment_rejected(self):
        bad = {
            **TINY,
            "blocks": [
                {
                    "experiment": "determinism",
                    "params": {"base": 2},
                    "axes": {"base": [2, 4]},
                }
            ],
        }
        with pytest.raises(ScenarioError, match="more than once"):
            parse_scenario(bad)

    def test_scalar_and_axis_conflict_rejected(self):
        bad = {
            **TINY,
            "blocks": [
                {
                    "experiment": "determinism",
                    "seed": 0,
                    "axes": {"seed": [0, 1]},
                }
            ],
        }
        with pytest.raises(ScenarioError, match="scalar and an axis"):
            parse_scenario(bad)

    def test_seed_axis_requires_declared_seed_or_fault_plan(self):
        bad = {
            **TINY,
            "blocks": [{"experiment": "figure1", "axes": {"seed": [0, 1]}}],
        }
        with pytest.raises(ScenarioError, match="identical cells"):
            parse_scenario(bad)

    def test_bad_seed_value_in_axis(self):
        bad = {
            **TINY,
            "blocks": [
                {"experiment": "determinism", "axes": {"seed": [-1]}}
            ],
        }
        with pytest.raises(ValueError, match="seed must be"):
            parse_scenario(bad)

    def test_bad_fault_plan_value(self):
        bad = {
            **TINY,
            "blocks": [
                {"experiment": "figure5", "fault_plan": "meteor-strike"}
            ],
        }
        with pytest.raises(ValueError):
            parse_scenario(bad)

    def test_missing_file_is_usage_error(self):
        with pytest.raises(ScenarioError, match="not found"):
            load_scenario("no/such/scenario.json")

    def test_committed_scenarios_parse(self):
        spec = load_scenario(os.path.join(REPO_ROOT, "scenarios", "ci_smoke.json"))
        assert spec.cell_count() == 9
        yaml = pytest.importorskip("yaml")  # noqa: F841
        example = load_scenario(
            os.path.join(REPO_ROOT, "scenarios", "example.yaml")
        )
        assert example.cell_count() == 9


class TestExpansion:
    def test_cartesian_order_and_ids(self):
        cells = expand(parse_scenario(TINY))
        assert len(cells) == 5
        assert [c.cell_id for c in cells[:4]] == [
            "determinism/base=2/seed=0",
            "determinism/base=2/seed=1",
            "determinism/base=4/seed=0",
            "determinism/base=4/seed=1",
        ]
        assert cells[4].cell_id == (
            "figure5/seed=0/fault_plan=stragglers:probability=0.2"
        )
        assert cells[4].plan.fault_plan == "stragglers:probability=0.2"

    def test_zip_advances_in_lockstep(self):
        spec = parse_scenario(
            {
                "name": "z",
                "blocks": [
                    {
                        "experiment": "determinism",
                        "axes": {"seed": [0, 1]},
                        "zip": {"base": [2, 4], "repetitions": [3, 5]},
                    }
                ],
            }
        )
        cells = expand(spec)
        assert len(cells) == 4  # 2 seeds x 2 zipped rows
        combos = {
            (c.plan.params["base"], c.plan.params["repetitions"])
            for c in cells
        }
        assert combos == {(2, 3), (4, 5)}  # never (2, 5) or (4, 3)

    def test_duplicate_cell_ids_rejected(self):
        block = {
            "experiment": "determinism",
            "axes": {"base": [2]},
            "seed": 0,
        }
        with pytest.raises(ScenarioError, match="same cell id"):
            expand(parse_scenario({"name": "d", "blocks": [block, dict(block)]}))

    def test_cells_validate_as_plans(self):
        for cell in expand(parse_scenario(TINY)):
            cell.plan.validate()


class TestRunDigests:
    """The acceptance bar: one matrix, three execution modes, one digest."""

    def test_serial_jobs2_and_warm_cache_aggregate_identically(self, tmp_path):
        spec = parse_scenario(TINY)
        serial = scenario_report(
            run_scenario(spec, work_dir=str(tmp_path / "w0"))
        )
        cache_dir = str(tmp_path / "cache")
        jobs2 = scenario_report(
            run_scenario(
                spec, jobs=2, cache=True, cache_dir=cache_dir,
                work_dir=str(tmp_path / "w1"),
            )
        )
        warm = scenario_report(
            run_scenario(
                spec, jobs=2, cache=True, cache_dir=cache_dir,
                work_dir=str(tmp_path / "w2"),
            )
        )
        assert (
            serial["aggregate_digest"]
            == jobs2["aggregate_digest"]
            == warm["aggregate_digest"]
        )
        assert serial["counts"] == {
            "cells": 5, "ok": 5, "degraded": 0, "failed": 0,
        }

    def test_failed_cell_recorded_not_fatal(self, tmp_path, monkeypatch):
        import repro.scenario.runner as runner_mod

        spec = parse_scenario(TINY)
        real_execute = runner_mod.execute
        victim = expand(spec)[0].cell_id

        def flaky(plan, **kwargs):
            if plan.experiment_id == "determinism" and plan.seed == 0 \
                    and plan.params.get("base") == 2:
                raise RuntimeError("boom")
            return real_execute(plan, **kwargs)

        monkeypatch.setattr(runner_mod, "execute", flaky)
        run = run_scenario(spec, work_dir=str(tmp_path))
        report = scenario_report(run)
        assert not run.ok
        failed = [c for c in report["cells"] if c["status"] == "failed"]
        assert [c["id"] for c in failed] == [victim]
        assert "boom" in failed[0]["error"]
        assert report["counts"]["failed"] == 1


class TestReportsAndDiffs:
    def _small_report(self, tmp_path, name="r"):
        spec = parse_scenario(TINY)
        return scenario_report(run_scenario(spec, work_dir=str(tmp_path / name)))

    def test_report_roundtrip(self, tmp_path):
        payload = self._small_report(tmp_path)
        path = str(tmp_path / "report.json")
        write_report(payload, path)
        assert load_report(path)["aggregate_digest"] == payload["aggregate_digest"]

    def test_load_rejects_non_scenario_report(self, tmp_path):
        path = str(tmp_path / "bogus.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"outcomes": []}, handle)
        with pytest.raises(ValueError, match="not a scenario report"):
            load_report(path)

    def test_diff_identical_reports_is_empty(self, tmp_path):
        payload = self._small_report(tmp_path)
        diff = diff_reports(payload, payload)
        assert regressions(diff) == 0
        assert render_diff(diff) == "no changes between the reports"

    def test_diff_flags_digest_change_and_status_regression(self, tmp_path):
        payload = self._small_report(tmp_path)
        tampered = json.loads(json.dumps(payload))
        tampered["cells"][0]["digest"] = "deadbeef"
        tampered["cells"][4]["status"] = "failed"
        diff = diff_reports(tampered, payload)
        assert diff["changed"] == [payload["cells"][0]["id"]]
        assert diff["regressed"] == [payload["cells"][4]["id"]]
        assert regressions(diff) == 2

    def test_diff_tracks_matrix_shape_changes(self, tmp_path):
        payload = self._small_report(tmp_path)
        smaller = json.loads(json.dumps(payload))
        removed = smaller["cells"].pop()
        diff = diff_reports(smaller, payload)
        assert diff["disappeared"] == [removed["id"]]
        assert regressions(diff) == 0  # shape changes report, don't gate


class TestCheckReportTool:
    """tools/check_report.py reads scenario aggregate reports too."""

    @pytest.fixture()
    def tool(self):
        spec = importlib.util.spec_from_file_location(
            "check_report",
            os.path.join(REPO_ROOT, "tools", "check_report.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_summarize_and_diff_scenario_reports(self, tool, tmp_path, capsys):
        spec = parse_scenario(TINY)
        payload = scenario_report(run_scenario(spec, work_dir=str(tmp_path)))
        path = str(tmp_path / "report.json")
        write_report(payload, path)
        assert tool.main([path, "--against", path]) == 0
        out = capsys.readouterr().out
        assert "scenario=tiny" in out
        assert "no changes between the reports" in out

    def test_digest_change_gates_exit_code(self, tool, tmp_path, capsys):
        spec = parse_scenario(TINY)
        payload = scenario_report(run_scenario(spec, work_dir=str(tmp_path)))
        base = str(tmp_path / "base.json")
        write_report(payload, base)
        payload["cells"][0]["digest"] = "deadbeef"
        newer = str(tmp_path / "new.json")
        write_report(payload, newer)
        assert tool.main([newer, "--against", base]) == 1
        assert "changed:" in capsys.readouterr().out

    def test_mixed_kinds_rejected(self, tool, tmp_path, capsys):
        spec = parse_scenario(TINY)
        scenario_path = str(tmp_path / "s.json")
        write_report(
            scenario_report(run_scenario(spec, work_dir=str(tmp_path))),
            scenario_path,
        )
        check_path = str(tmp_path / "c.json")
        with open(check_path, "w", encoding="utf-8") as handle:
            json.dump({"seed": 0, "budget": "small", "outcomes": []}, handle)
        assert tool.main([scenario_path, "--against", check_path]) == 2
        assert "kinds differ" in capsys.readouterr().err

    def test_check_reports_still_work(self, tool, tmp_path, capsys):
        check_path = str(tmp_path / "c.json")
        with open(check_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "seed": 0,
                    "budget": "small",
                    "outcomes": [
                        {"suite": "s", "check": "a", "passed": True}
                    ],
                },
                handle,
            )
        assert tool.main([check_path]) == 0
        assert "failures=0" in capsys.readouterr().out


class TestScenarioCLI:
    def _write(self, tmp_path, data):
        path = str(tmp_path / "scenario.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        return path

    def test_describe_lists_cells(self, tmp_path, capsys):
        path = self._write(tmp_path, TINY)
        assert main(["scenario", "describe", path]) == 0
        out = capsys.readouterr().out
        assert "cells      : 5" in out
        assert "determinism/base=2/seed=0" in out

    def test_run_writes_report_and_diffs_clean(self, tmp_path, capsys):
        path = self._write(tmp_path, TINY)
        report = str(tmp_path / "report.json")
        argv = [
            "scenario", "run", path, "--quiet",
            "--output", report, "--work-dir", str(tmp_path / "w"),
        ]
        assert main(argv + ["--against", ""]) == 0
        capsys.readouterr()
        second = str(tmp_path / "second.json")
        assert main([
            "scenario", "run", path, "--quiet", "--output", second,
            "--work-dir", str(tmp_path / "w2"), "--against", report,
        ]) == 0
        out = capsys.readouterr().out
        assert "no changes between the reports" in out
        assert (
            load_report(report)["aggregate_digest"]
            == load_report(second)["aggregate_digest"]
        )

    def test_diff_subcommand_gates_on_changes(self, tmp_path, capsys):
        path = self._write(tmp_path, TINY)
        report = str(tmp_path / "report.json")
        assert main([
            "scenario", "run", path, "--quiet", "--output", report,
            "--work-dir", str(tmp_path / "w"), "--against", "",
        ]) == 0
        capsys.readouterr()
        assert main(["scenario", "diff", report, report]) == 0
        tampered = json.loads(open(report).read())
        tampered["cells"][0]["digest"] = "deadbeef"
        other = str(tmp_path / "tampered.json")
        with open(other, "w", encoding="utf-8") as handle:
            json.dump(tampered, handle)
        capsys.readouterr()
        assert main(["scenario", "diff", other, report]) == 1
        assert "changed:" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["scenario", "run", str(tmp_path / "none.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_experiment_exits_2_with_suggestion(self, tmp_path, capsys):
        path = self._write(
            tmp_path, {"name": "x", "blocks": [{"experiment": "figure99"}]}
        )
        assert main(["scenario", "describe", path]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_bad_axis_exits_2_with_schema_error(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            {
                "name": "x",
                "blocks": [{"experiment": "figure5", "axes": {"bogus": [1]}}],
            },
        )
        assert main(["scenario", "describe", path]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "n_values" in err
