"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core.backoff import ExponentialFlagBackoff, NoBackoff
from repro.barrier.simulator import simulate_barrier
from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    RunManifest,
    Tracer,
    ValueStats,
    build_manifest,
    events_to_columns,
    get_tracer,
    profile_experiment,
    read_events,
    read_manifest,
    render_summary,
    set_tracer,
    tracing,
)


class TestCounters:
    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("x")
        tracer.count("x", 4)
        assert tracer.counters == {"x": 5}

    def test_observe_tracks_distribution(self):
        tracer = Tracer()
        for value in (1, 5, 3):
            tracer.observe("lat", value)
        stats = tracer.observations["lat"]
        assert stats.count == 3
        assert stats.total == 9
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.mean == 3

    def test_value_stats_buckets_power_of_two(self):
        stats = ValueStats()
        for value in (0, 1, 2, 3, 4, 1000):
            stats.add(value)
        # bit_length: 0->0, 1->1, 2..3->2, 4->3, 1000->10.
        assert stats.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 10: 1}

    def test_timer_records_seconds(self):
        ticks = iter([0.0, 2.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.timer("phase"):
            pass
        assert tracer.timers["phase"].total == 2.5


class TestEvents:
    def test_emit_assigns_sequence_and_totals(self):
        tracer = Tracer()
        tracer.emit("a", x=1)
        tracer.emit("b")
        tracer.emit("a", x=2)
        assert tracer.events_emitted == 3
        assert tracer.event_totals == {"a": 2, "b": 1}
        assert [e["seq"] for e in tracer.recent()] == [0, 1, 2]
        assert [e["x"] for e in tracer.recent(kind="a")] == [1, 2]

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.emit("tick", i=i)
        assert tracer.events_emitted == 10
        assert [e["i"] for e in tracer.recent()] == [6, 7, 8, 9]

    def test_ring_size_validated(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)


class TestJsonlRoundTrip:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        tracer.emit("alpha", cpu=3, cost=7)
        tracer.emit("beta", note="hi")
        tracer.close()
        events = read_events(str(path))
        assert events == [
            {"seq": 0, "kind": "alpha", "cpu": 3, "cost": 7},
            {"seq": 1, "kind": "beta", "note": "hi"},
        ]
        assert read_events(str(path), kind="beta") == [events[1]]

    def test_events_to_columns(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        tracer.emit("poll", cost=2)
        tracer.emit("poll", cost=5)
        tracer.close()
        columns = events_to_columns(read_events(str(path)), ["cost", "missing"])
        assert columns == {"cost": [2, 5], "missing": [None, None]}

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "kind": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="events.jsonl:2"):
            read_events(str(path))

    def test_closed_sink_rejects_writes(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "e.jsonl"))
        sink.close()
        with pytest.raises(ValueError):
            sink.write({"kind": "late"})


class TestNoOpDefault:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_tracer_collects_nothing(self):
        null = NullTracer()
        null.emit("kind", x=1)
        null.count("c", 5)
        null.observe("o", 2)
        with null.timer("t"):
            pass
        assert null.events_emitted == 0
        assert null.counters == {}
        assert null.recent() == []

    def test_tracing_context_restores_previous(self):
        tracer = Tracer()
        with tracing(tracer):
            assert get_tracer() is tracer
            inner = Tracer()
            with tracing(inner):
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        assert previous is NULL_TRACER
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_tracing_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with tracing(Tracer()):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_disabled_tracing_does_not_change_results(self):
        # The hooks must be invisible when tracing is off *and* must not
        # perturb simulation results when it is on (observability only
        # reads simulator state, never touches the RNG streams).
        plain = simulate_barrier(8, 100, NoBackoff(), repetitions=3)
        with tracing(Tracer()):
            traced = simulate_barrier(8, 100, NoBackoff(), repetitions=3)
        assert traced.mean_accesses == plain.mean_accesses
        assert traced.mean_waiting_time == plain.mean_waiting_time


class TestInstrumentation:
    def test_barrier_simulator_counts_traffic(self):
        tracer = Tracer()
        with tracing(tracer):
            aggregate = simulate_barrier(
                8, 100, ExponentialFlagBackoff(base=2), repetitions=2
            )
        assert tracer.counters["barrier.episodes"] == 2
        # Counter totals must agree with the simulator's own accounting.
        expected = round(aggregate.mean_accesses * 8 * 2)
        assert tracer.counters["barrier.accesses"] == pytest.approx(expected)
        assert tracer.event_totals["barrier.episode"] == 2
        assert tracer.counters["barrier.backoff_wait_cycles"] > 0
        assert "barrier.completion_cycles" in tracer.observations

    def test_scheduler_reports_progress(self):
        from repro.trace.apps import build_app
        from repro.trace.scheduler import PostMortemScheduler

        tracer = Tracer()
        with tracing(tracer):
            trace = PostMortemScheduler(build_app("SIMPLE", scale=0.1), 4).run()
        assert tracer.counters["sched.refs"] == len(trace)
        assert tracer.counters["sched.cycles"] == trace.cycles
        assert tracer.counters["sched.barriers"] == len(trace.barriers)
        assert tracer.observations["sched.refs_per_cpu"].count == 4
        assert tracer.event_totals["sched.run"] == 1
        assert tracer.event_totals["sched.barrier"] == len(trace.barriers)

    def test_coherence_and_directory_report_invalidations(self):
        from repro.memory.coherence import CoherenceConfig, CoherenceSimulator
        from repro.trace.apps import build_app
        from repro.trace.scheduler import PostMortemScheduler

        trace = PostMortemScheduler(build_app("SIMPLE", scale=0.1), 8).run()
        tracer = Tracer()
        with tracing(tracer):
            stats = CoherenceSimulator(
                CoherenceConfig(num_cpus=8, num_pointers=2)
            ).run(trace)
        assert tracer.counters["coherence.invalidations"] == (
            stats.invalidations_on_write + stats.invalidations_on_overflow
        )
        assert tracer.counters["directory.overflow_invalidations"] == (
            stats.invalidations_on_overflow
        )
        run_events = tracer.recent(kind="coherence.run")
        assert len(run_events) == 1
        assert run_events[0]["refs"] == stats.refs

    def test_sim_engine_counts_events(self):
        from repro.sim.engine import Simulator

        tracer = Tracer()
        with tracing(tracer):
            sim = Simulator()
            for t in (5, 1, 9):
                sim.schedule(t, lambda: None)
            fired = sim.run()
        assert fired == 3
        assert tracer.counters["sim.events_scheduled"] == 3
        assert tracer.counters["sim.events_fired"] == 3
        assert tracer.event_totals["sim.event"] == 3
        assert tracer.observations["sim.heap_depth"].maximum == 3

    def test_multistage_network_observes_queue_lengths(self):
        from repro.network.hotspot import HotspotWorkload
        from repro.network.multistage import MultistageNetwork

        tracer = Tracer()
        with tracing(tracer):
            network = MultistageNetwork(num_ports=8)
            result = network.run(
                HotspotWorkload(num_ports=8, hot_fraction=0.5, seed=1), 2000
            )
        assert tracer.counters["network.completions"] == result.completed
        assert tracer.counters["network.collisions"] == result.collisions
        if result.collisions:
            assert "network.hotspot_queue_length" in tracer.observations


class TestManifest:
    def _tiny_profile(self, tmp_path, name):
        return profile_experiment(
            "figure4",
            output_dir=str(tmp_path / name),
            repetitions=2,
            n_values=(4, 8),
            a_values=(0,),
            seed=0,
        )

    def test_profile_writes_all_artifacts(self, tmp_path):
        run = self._tiny_profile(tmp_path, "a")
        manifest = read_manifest(run.manifest_path)
        assert manifest["experiment_id"] == "figure4"
        assert manifest["config"]["n_values"] == [4, 8]
        assert manifest["events_emitted"] == len(read_events(run.events_path))
        assert manifest["counters"]["barrier.episodes"] == 4
        assert manifest["event_totals"]["barrier.episode"] == 4
        assert "experiment.figure4" in manifest["timers"]
        summary = (tmp_path / "a" / "summary.txt").read_text()
        assert "barrier.accesses" in summary

    def test_manifest_deterministic_given_seed(self, tmp_path):
        first = self._tiny_profile(tmp_path, "a")
        second = self._tiny_profile(tmp_path, "b")
        assert (
            first.manifest.deterministic_digest()
            == second.manifest.deterministic_digest()
        )
        # The full manifests differ only in wall-clock / environment
        # fields; the digest stored on disk matches the recomputed one.
        on_disk = read_manifest(first.manifest_path)
        assert on_disk["deterministic_digest"] == (
            first.manifest.deterministic_digest()
        )

    def test_manifest_digest_sensitive_to_seed(self, tmp_path):
        first = self._tiny_profile(tmp_path, "a")
        different = profile_experiment(
            "figure4",
            output_dir=str(tmp_path / "c"),
            repetitions=2,
            n_values=(4, 8),
            a_values=(0,),
            seed=1,
        )
        assert (
            first.manifest.deterministic_digest()
            != different.manifest.deterministic_digest()
        )

    def test_build_manifest_excludes_timers_from_digest(self):
        tracer = Tracer()
        tracer.count("c", 3)
        manifest_a = build_manifest(tracer, experiment_id="x", seed=0)
        with tracer.timer("slow"):
            pass
        manifest_b = build_manifest(tracer, experiment_id="x", seed=0)
        assert (
            manifest_a.deterministic_digest()
            == manifest_b.deterministic_digest()
        )

    def test_manifest_json_is_valid(self, tmp_path):
        tracer = Tracer()
        tracer.emit("k")
        manifest = build_manifest(
            tracer, experiment_id="x", config={"n_values": (2, 4)}, seed=0
        )
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        loaded = json.loads(open(path).read())
        assert loaded["config"] == {"n_values": [2, 4]}
        assert isinstance(loaded["git_rev"], str)
        assert loaded["version"] == 1

    def test_custom_runner_override(self, tmp_path):
        calls = []

        def runner(experiment_id, **kwargs):
            calls.append((experiment_id, kwargs))
            return "result"

        run = profile_experiment(
            "figure4", output_dir=str(tmp_path), runner=runner, seed=3
        )
        assert run.result == "result"
        assert calls == [("figure4", {"seed": 3})]
        assert run.manifest.seed == 3


class TestSummary:
    def test_render_summary_sections(self):
        tracer = Tracer(run_id="demo")
        tracer.emit("kind.a")
        tracer.count("layer.counter", 42)
        tracer.observe("layer.obs", 7)
        text = render_summary(tracer)
        assert "demo" in text
        assert "kind.a" in text
        assert "layer.counter" in text and "42" in text
        assert "layer.obs" in text

    def test_render_summary_empty_tracer(self):
        text = render_summary(Tracer(run_id="empty"))
        assert "(none)" in text


class TestRunManifestType:
    def test_dataclass_fields(self):
        tracer = Tracer()
        manifest = build_manifest(tracer, experiment_id="x")
        assert isinstance(manifest, RunManifest)
        assert manifest.events_emitted == 0
        assert manifest.seed is None
