"""Tests of the paper's simulation methodology itself.

Section 5.2: "The simulation for each set of parameters is repeated 100
times and the numbers are averaged over all the runs to compensate for
the random variations due to the assumption of a uniform probability of
arrival.  We verified that for each of the numbers we present the
standard deviation was less than about 7% over the hundred runs."
"""

import pytest

from repro.barrier.simulator import simulate_barrier
from repro.core.backoff import ExponentialFlagBackoff, NoBackoff, VariableBackoff


class TestSigmaBound:
    """The <7% relative-sigma claim across a representative grid."""

    @pytest.mark.parametrize("n", [64, 256])
    @pytest.mark.parametrize("interval_a", [100, 1000])
    def test_no_backoff_sigma_under_7pct_large_n(self, n, interval_a):
        aggregate = simulate_barrier(
            n, interval_a, NoBackoff(), repetitions=100
        )
        assert aggregate.relative_stddev_accesses < 0.07

    def test_small_n_sigma_is_arrival_span_variance(self):
        # At N=16 the first-to-last arrival span of 16 uniform draws
        # itself varies ~15% relative, and the accesses inherit it; the
        # paper's <7% figure matches the larger-N points it features.
        aggregate = simulate_barrier(16, 1000, NoBackoff(), repetitions=100)
        assert 0.05 < aggregate.relative_stddev_accesses < 0.25

    @pytest.mark.parametrize("n", [64, 128])
    def test_variable_backoff_sigma(self, n):
        aggregate = simulate_barrier(
            n, 1000, VariableBackoff(), repetitions=100
        )
        assert aggregate.relative_stddev_accesses < 0.10

    def test_a0_is_deterministic(self):
        aggregate = simulate_barrier(64, 0, NoBackoff(), repetitions=20)
        assert aggregate.relative_stddev_accesses == 0.0

    def test_backoff_sigma_larger_but_bounded(self):
        # Backoff runs have few accesses, so the relative sigma is
        # larger; it must still be bounded enough for 100-rep means.
        aggregate = simulate_barrier(
            64, 1000, ExponentialFlagBackoff(2), repetitions=100
        )
        assert aggregate.relative_stddev_accesses < 0.30


class TestAveragingConverges:
    def test_more_repetitions_tighter_seed_spread(self):
        # The spread of the 100-rep mean across seeds must be far
        # tighter than single-episode variability.
        means = [
            simulate_barrier(
                32, 1000, NoBackoff(), repetitions=100, seed=seed
            ).mean_accesses
            for seed in range(3)
        ]
        spread = (max(means) - min(means)) / (sum(means) / len(means))
        assert spread < 0.02

    def test_mean_unbiased_across_seeds(self):
        from repro.barrier.models import model2_accesses

        means = [
            simulate_barrier(
                16, 1000, NoBackoff(), repetitions=50, seed=seed
            ).mean_accesses
            for seed in range(4)
        ]
        average = sum(means) / len(means)
        assert average == pytest.approx(model2_accesses(16, 1000), rel=0.05)
