"""Tests for the headline-claims verifier."""

import pytest

from repro.analysis.claims import (
    CLAIM_CHECKS,
    ClaimResult,
    verify_claims,
    verify_report,
)


class TestClaimChecks:
    def test_registry_nonempty(self):
        assert len(CLAIM_CHECKS) >= 9

    @pytest.mark.parametrize("claim_id", sorted(CLAIM_CHECKS))
    def test_each_claim_passes_at_modest_fidelity(self, claim_id):
        result = CLAIM_CHECKS[claim_id](15, 0)
        assert isinstance(result, ClaimResult)
        assert result.claim_id == claim_id
        assert result.provenance
        assert result.evidence
        assert result.passed, f"{claim_id} failed: {result.evidence}"

    def test_verify_claims_runs_all(self):
        results = verify_claims(repetitions=5)
        assert len(results) == len(CLAIM_CHECKS)

    def test_report_counts(self):
        report = verify_report(repetitions=5)
        assert "headline claims verified" in report
        assert "[PASS]" in report

    def test_str_format(self):
        result = ClaimResult(
            claim_id="x",
            statement="s",
            provenance="p",
            passed=False,
            evidence="e",
        )
        text = str(result)
        assert text.startswith("[FAIL] x")
        assert "evidence: e" in text
