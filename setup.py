"""Setup shim for environments without the `wheel` package.

Allows `pip install -e . --no-build-isolation` (legacy editable install)
where PEP 517 editable builds would fail for lack of `bdist_wheel`.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
