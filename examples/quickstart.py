#!/usr/bin/env python
"""Quickstart: how much barrier traffic does adaptive backoff save?

Reproduces the paper's headline scenario in a dozen lines: 64
processors arrive at a barrier spread over A cycles; we compare
continuous polling against backoff on the barrier variable and
exponential backoff on the barrier flag, reporting the network-access
savings and the waiting-time cost of each policy.

Run:  python examples/quickstart.py
"""

from repro import (
    ExponentialFlagBackoff,
    NoBackoff,
    VariableBackoff,
    simulate_barrier,
)

NUM_PROCESSORS = 64
REPETITIONS = 100

POLICIES = [
    ("no backoff", NoBackoff()),
    ("backoff on barrier variable", VariableBackoff()),
    ("base-2 backoff on barrier flag", ExponentialFlagBackoff(base=2)),
    ("base-8 backoff on barrier flag", ExponentialFlagBackoff(base=8)),
]


def main() -> None:
    for interval_a in (0, 100, 1000):
        print(f"\nN = {NUM_PROCESSORS} processors, arrival interval A = {interval_a}")
        baseline = simulate_barrier(
            NUM_PROCESSORS, interval_a, NoBackoff(), repetitions=REPETITIONS
        )
        header = f"{'policy':32} {'accesses':>9} {'savings':>8} {'waiting':>8}"
        print(header)
        print("-" * len(header))
        for label, policy in POLICIES:
            point = simulate_barrier(
                NUM_PROCESSORS, interval_a, policy, repetitions=REPETITIONS
            )
            savings = 100.0 * point.savings_vs(baseline)
            print(
                f"{label:32} {point.mean_accesses:9.1f} "
                f"{savings:7.1f}% {point.mean_waiting_time:8.1f}"
            )
    print(
        "\nReading: at A = 1000 the base-2 flag backoff removes ~97% of the"
        "\nbarrier's network accesses (the paper reports 20% to >95%); larger"
        "\nbases save slightly more traffic but overshoot the release and"
        "\ninflate waiting time — the tradeoff Section 7 discusses."
    )


if __name__ == "__main__":
    main()
