#!/usr/bin/env python
"""Scaling past the flat barrier: software combining trees + backoff.

The paper observes that once N is comparable to A, a flat barrier is
"probably inappropriate anyway without some form of distributed
software combining [Yew, Tseng & Lawrie].  Our backoff methods can
still be used on the intermediate nodes of the combining tree."

This example scales N with a fixed A = 100 and compares:

- the flat Tang-Yew barrier (with and without backoff), and
- combining trees of degree 2, 4 and 8 (whose every node is a Tang-Yew
  barrier in its own pair of memory modules), with and without base-2
  flag backoff at the nodes.

Run:  python examples/combining_tree.py
"""

from repro import (
    ExponentialFlagBackoff,
    NoBackoff,
    simulate_barrier,
    simulate_tree_barrier,
)

INTERVAL_A = 100
REPETITIONS = 30


def main() -> None:
    print(f"A = {INTERVAL_A}, averages over {REPETITIONS} runs\n")
    header = (
        f"{'N':>4} | {'flat':>7} {'flat+b2':>8} | "
        f"{'tree-2':>7} {'tree-4':>7} {'tree-8':>7} | {'tree-4+b2':>9}"
    )
    print(header)
    print("-" * len(header))
    for n in (16, 64, 256, 512):
        flat = simulate_barrier(
            n, INTERVAL_A, NoBackoff(), repetitions=REPETITIONS
        )
        flat_b2 = simulate_barrier(
            n, INTERVAL_A, ExponentialFlagBackoff(base=2), repetitions=REPETITIONS
        )
        trees = {
            degree: simulate_tree_barrier(
                n, INTERVAL_A, degree=degree, repetitions=REPETITIONS
            )
            for degree in (2, 4, 8)
        }
        tree_backoff = simulate_tree_barrier(
            n,
            INTERVAL_A,
            degree=4,
            policy=ExponentialFlagBackoff(base=2),
            repetitions=REPETITIONS,
        )
        print(
            f"{n:>4} | {flat.mean_accesses:7.1f} {flat_b2.mean_accesses:8.1f} | "
            f"{trees[2].mean_accesses:7.1f} {trees[4].mean_accesses:7.1f} "
            f"{trees[8].mean_accesses:7.1f} | {tree_backoff.mean_accesses:9.1f}"
        )
    print(
        "\n(accesses per process)  Reading: the flat barrier's accesses grow"
        "\nlinearly in N while the tree's grow ~logarithmically, because each"
        "\nnode spreads contention over its own memory modules; backoff at"
        "\nthe tree nodes removes most of the remaining polls, combining both"
        "\nideas exactly as Section 4 suggests."
    )


if __name__ == "__main__":
    main()
