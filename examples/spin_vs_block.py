#!/usr/bin/env python
"""Spin, block, or adapt?  The Section 4/7 queueing hybrid.

"Often, the choice of busy waiting or blocking cannot be made at
compile time due to uncertainty in execution times of processes.  In
such cases, our adaptive methods can be used to decide when it might be
best to take a busy-waiting process out of circulation and queue it on
a condition variable."

This example sweeps the arrival interval A and compares three barriers
at N = 64:

- spin with base-2 exponential flag backoff,
- pure blocking (every non-last process pays the enqueue overhead),
- the hybrid, which spins with backoff until the next backoff interval
  would cross a threshold, then enqueues.

Run:  python examples/spin_vs_block.py
"""

from repro import (
    ExponentialFlagBackoff,
    simulate_barrier,
    simulate_blocking_barrier,
    simulate_threshold_barrier,
)

NUM_PROCESSORS = 64
OVERHEAD = 100  # cycles to enqueue / wake a process
THRESHOLD = 256  # queue when the next backoff exceeds this
REPETITIONS = 50


def main() -> None:
    print(
        f"N = {NUM_PROCESSORS}, enqueue/wakeup overhead = {OVERHEAD} cycles, "
        f"queue threshold = {THRESHOLD} cycles\n"
    )
    header = (
        f"{'A':>7} | {'spin acc':>8} {'wait':>6} | {'block acc':>9} "
        f"{'wait':>6} | {'hybrid acc':>10} {'wait':>6} {'queued':>6}"
    )
    print(header)
    print("-" * len(header))
    for interval_a in (0, 100, 1000, 10_000, 50_000):
        spin = simulate_barrier(
            NUM_PROCESSORS,
            interval_a,
            ExponentialFlagBackoff(base=2),
            repetitions=REPETITIONS,
        )
        block = simulate_blocking_barrier(
            NUM_PROCESSORS,
            interval_a,
            enqueue_overhead=OVERHEAD,
            wakeup_overhead=OVERHEAD,
            repetitions=REPETITIONS,
        )
        hybrid = simulate_threshold_barrier(
            NUM_PROCESSORS,
            interval_a,
            ExponentialFlagBackoff(base=2),
            threshold=THRESHOLD,
            enqueue_overhead=OVERHEAD,
            wakeup_overhead=OVERHEAD,
            repetitions=REPETITIONS,
        )
        print(
            f"{interval_a:>7} | {spin.mean_accesses:8.1f} "
            f"{spin.mean_waiting_time:6.0f} | {block.mean_accesses:9.1f} "
            f"{block.mean_waiting_time:6.0f} | {hybrid.mean_accesses:10.1f} "
            f"{hybrid.mean_waiting_time:6.0f} {hybrid.queued.mean:6.1f}"
        )
    print(
        "\nReading: at small A the enqueue overhead is wasted (spinning wins"
        "\non waiting time); at large A blocking wins and spinning overshoots."
        "\nThe hybrid spins while arrivals are close and queues when its own"
        "\nbackoff state signals a long wait — tracking the better scheme"
        "\nwithout knowing A in advance."
    )


if __name__ == "__main__":
    main()
