#!/usr/bin/env python
"""Figure 4 live: the analytic models against the simulator.

Model 1 (``5N/2``) covers simultaneous arrivals; Model 2
(``r/2 + 3N/2`` with ``r = A(N-1)/(N+1)``) covers spread arrivals; the
paper shows their maximum fits the simulation everywhere.  This example
recomputes the comparison and draws it as an ASCII plot.

Run:  python examples/model_vs_simulation.py
"""

from repro import (
    NoBackoff,
    model1_accesses,
    model2_accesses,
    simulate_barrier,
)
from repro.analysis.figures import render_ascii_plot, render_series
from repro.sim.stats import Series

N_VALUES = (2, 4, 8, 16, 32, 64, 128, 256, 512)
REPETITIONS = 50


def main() -> None:
    series = {}
    for interval_a in (0, 1000):
        curve = Series(label=f"sim A={interval_a}")
        for n in N_VALUES:
            point = simulate_barrier(
                n, interval_a, NoBackoff(), repetitions=REPETITIONS
            )
            curve.add(n, point.mean_accesses)
        series[curve.label] = curve

    model1 = Series(label="Model 1 (5N/2)")
    model2 = Series(label="Model 2 (A=1000)")
    for n in N_VALUES:
        model1.add(n, model1_accesses(n))
        model2.add(n, model2_accesses(n, 1000))
    series[model1.label] = model1
    series[model2.label] = model2

    print(render_series(series, title="Network accesses per process"))
    print()
    print(
        render_ascii_plot(
            series,
            title="accesses vs N (log2 x, log10 y)",
            log_y=True,
        )
    )
    # Each model's own regime: Model 1 needs N large enough that its
    # 5N/2 approximation's constant term washes out; Model 2 needs
    # N << A.
    worst1 = max(
        abs(series["sim A=0"].y_at(n) - model1.y_at(n)) / model1.y_at(n)
        for n in N_VALUES
        if n >= 8
    )
    worst2 = max(
        abs(series["sim A=1000"].y_at(n) - model2.y_at(n)) / model2.y_at(n)
        for n in N_VALUES
        if n <= 64
    )
    print(
        f"\nWorst-case error in regime: Model 1 vs sim(A=0) "
        f"{100 * worst1:.1f}% for N >= 8; Model 2 vs sim(A=1000) "
        f"{100 * worst2:.1f}% for N <= 64."
        "\nAs the paper notes, Model 2 underestimates contention once N"
        "\napproaches A — the max of the two models fits everywhere."
    )


if __name__ == "__main__":
    main()
