#!/usr/bin/env python
"""Trace-driven coherence study: why synchronization traffic hurts.

Builds the synthetic SIMPLE application, schedules it onto 64
processors with the post-mortem scheduler (fetch&add self-scheduling +
Tang-Yew barriers, one reference per processor per cycle), and runs the
resulting trace through the Dir_i_NB directory-coherence simulator —
the Section 2 methodology behind Tables 1-2 and Figure 1.

Run:  python examples/trace_driven_coherence.py [scale]

``scale`` (default 0.5) shrinks the workload; 1.0 is paper scale.
"""

import sys

from repro import CoherenceConfig, CoherenceSimulator, PostMortemScheduler, build_app

NUM_CPUS = 64


def main(scale: float = 0.5) -> None:
    program = build_app("SIMPLE", scale=scale)
    print(f"Scheduling SIMPLE (scale={scale}) onto {NUM_CPUS} processors ...")
    trace = PostMortemScheduler(program, NUM_CPUS).run()
    print(
        f"  {len(trace):,} references over {trace.cycles:,} cycles; "
        f"{100 * trace.sync_fraction:.1f}% synchronization "
        f"(paper: ~5.3% for SIMPLE)"
    )
    print(
        f"  barrier intervals: mean A = {trace.mean_interval_a():.0f}, "
        f"mean E = {trace.mean_interval_e():.0f} cycles"
    )

    print("\nDir_i_NB invalidation behaviour (Table 1 row):")
    print(f"{'pointers':>8} {'non-sync %':>11} {'sync %':>8}")
    for pointers in (2, 3, 4, 5, NUM_CPUS):
        simulator = CoherenceSimulator(
            CoherenceConfig(num_cpus=NUM_CPUS, num_pointers=pointers)
        )
        stats = simulator.run(trace)
        print(
            f"{pointers:>8} {stats.data_invalidation_pct:>11.1f} "
            f"{stats.sync_invalidation_pct:>8.1f}"
        )

    print("\nUncached synchronization variables (Table 2 cell):")
    simulator = CoherenceSimulator(
        CoherenceConfig(num_cpus=NUM_CPUS, num_pointers=4, cache_sync=False)
    )
    stats = simulator.run(trace)
    print(
        f"  sync traffic = {stats.sync_traffic_pct:.1f}% of all memory "
        f"traffic (paper: ~22-25% for SIMPLE)"
    )

    print("\nInvalidations per write to a clean shared block (Figure 1):")
    simulator = CoherenceSimulator(
        CoherenceConfig(num_cpus=NUM_CPUS, num_pointers=NUM_CPUS)
    )
    stats = simulator.run(trace)
    histogram = stats.write_invalidation_histogram
    invalidating = [(k, c) for k, c in histogram.items() if k >= 1]
    total = sum(c for __, c in invalidating) or 1
    for k, c in invalidating[:8]:
        bar = "#" * max(int(60 * c / total), 1)
        print(f"  x={k:>3}: {100 * c / total:6.2f}%  {bar}")
    tail = [(k, c) for k, c in invalidating if k > 8]
    if tail:
        k_max = max(k for k, __ in tail)
        share = 100 * sum(c for __, c in tail) / total
        print(
            f"  x>8 (up to {k_max}): {share:.2f}% — the widely-shared "
            "barrier flag writes the paper blames"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
