#!/usr/bin/env python
"""The Section 8 selection pipeline: profile, recommend, verify.

"One can get more venturesome by using profiling to determine the
temporal behavior of the application and the number of processors
participating in the synchronization and pass this information on to
the compiler for further optimization."

This example runs that pipeline end-to-end for each application:

1. schedule the application and *profile* its barriers (N, A, measured
   arrival offsets);
2. ask the :class:`~repro.core.selection.PolicyAdvisor` for an analytic
   recommendation (the conservative compiler path);
3. rank the paper's five policies empirically on the profiled arrival
   distribution (the venturesome path) and compare.

Run:  python examples/adaptive_selection.py [scale]
"""

import sys

from repro import PolicyAdvisor, PostMortemScheduler, SynchronizationProfile, build_app


def main(scale: float = 0.5) -> None:
    advisor = PolicyAdvisor(waiting_weight=0.1, queue_overhead=100)
    for app in ("FFT", "SIMPLE", "WEATHER"):
        trace = PostMortemScheduler(build_app(app, scale=scale), 64).run()
        profile = SynchronizationProfile.from_trace(trace)
        print(f"\n{app}: N = {profile.num_processors}, "
              f"measured A ~ {profile.interval_a:.0f} cycles "
              f"(A/N = {profile.spread_ratio:.2f})")
        analytic = advisor.recommend(profile)
        print(f"  analytic : {analytic.policy!r}")
        print(f"             {analytic.rationale}")
        ranking = advisor.rank(profile, repetitions=30)
        print("  empirical ranking (cost = accesses + 0.1 x waiting):")
        for label, cost in ranking:
            print(f"    {cost:10.1f}  {label}")
    print(
        "\nReading: the analytic rule (from the paper's Figures 5-10"
        "\nfindings) and the empirical ranking agree on the policy family;"
        "\nprofiling sharpens the exponential base per application."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
