#!/usr/bin/env python
"""The problem the paper solves: hot-spot tree saturation.

Before any backoff technique, the paper's premise (after Pfister &
Norton): when even a few percent of memory requests target one "hot"
module — which is exactly what barrier spinning produces — the switch
queues feeding that module fill, the congestion spreads backward
through the network in a tree, and *everyone's* memory bandwidth
collapses, including processors that never touch the hot variable.

This example sweeps the hot-traffic fraction through a 64-port buffered
Omega network and prints the bandwidth collapse, then shows what the
Section 8(5) queue-feedback throttle (Scott & Sohi style) buys when
applied proactively.

Run:  python examples/tree_saturation.py
"""

from repro.network.netbackoff import QueueFeedbackBackoff
from repro.network.packet import tree_saturation_sweep

NUM_PORTS = 64
HOT_FRACTIONS = (0.0, 0.01, 0.02, 0.04, 0.08, 0.16)
HORIZON = 4000


def main() -> None:
    print(
        f"{NUM_PORTS}-port buffered Omega network, 0.4 injections/port/cycle\n"
    )
    plain = tree_saturation_sweep(
        num_ports=NUM_PORTS, hot_fractions=HOT_FRACTIONS, horizon=HORIZON
    )
    throttled = tree_saturation_sweep(
        num_ports=NUM_PORTS,
        hot_fractions=HOT_FRACTIONS,
        horizon=HORIZON,
        backoff=QueueFeedbackBackoff(factor=2),
        proactive=True,
    )
    header = (
        f"{'hot %':>6} | {'cold bw/port':>12} {'cold latency':>12} | "
        f"{'throttled bw':>12} {'latency':>8}"
    )
    print(header)
    print("-" * len(header))
    baseline = plain[0.0].cold_throughput
    for fraction in HOT_FRACTIONS:
        p, t = plain[fraction], throttled[fraction]
        bar = "#" * max(int(24 * p.cold_throughput / baseline), 1)
        print(
            f"{100 * fraction:>5.0f}% | {p.cold_throughput:>12.4f} "
            f"{p.latency_cold.mean:>12.1f} | {t.cold_throughput:>12.4f} "
            f"{t.latency_cold.mean:>8.1f}  {bar}"
        )
    print(
        "\nReading: 4% hot traffic costs a third of everyone's bandwidth;"
        "\n16% costs four fifths — while the hot module itself saturates at"
        "\n~1 packet/cycle. The proactive queue-feedback throttle cannot"
        "\nrestore bandwidth (the hot module is the bottleneck) but sharply"
        "\ncuts the latency every cold request suffers. The real fix is to"
        "\nremove the hot traffic at its source — which is what the paper's"
        "\nadaptive backoff does to barrier spinning."
    )


if __name__ == "__main__":
    main()
