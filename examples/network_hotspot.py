#!/usr/bin/env python
"""Section 8 extension: backoff for network accesses under hot-spots.

Drives a 64-port circuit-switched Omega network with closed-loop
traffic in which a fraction of requests target one "hot" memory module
(the Pfister-Norton tree-saturation scenario the paper cites), and
compares the five network-backoff strategies Section 8 proposes against
immediate retry.

Run:  python examples/network_hotspot.py
"""

from repro.network import (
    ConstantRoundTripBackoff,
    DepthProportionalBackoff,
    ExponentialRetryBackoff,
    ImmediateRetry,
    InverseDepthBackoff,
    QueueFeedbackBackoff,
    hotspot_sweep,
)

NUM_PORTS = 64
HOT_FRACTIONS = (0.0, 0.05, 0.2)
HORIZON = 20_000

POLICIES = [
    ImmediateRetry(),
    DepthProportionalBackoff(factor=2),
    InverseDepthBackoff(factor=2),
    ConstantRoundTripBackoff(multiple=1.0),
    ExponentialRetryBackoff(base=2),
    QueueFeedbackBackoff(factor=1),
]


def main() -> None:
    print(
        f"{NUM_PORTS}-port Omega network, closed-loop traffic, "
        f"{HORIZON:,} cycle horizon\n"
    )
    results = hotspot_sweep(
        num_ports=NUM_PORTS,
        hot_fractions=HOT_FRACTIONS,
        policies=POLICIES,
        horizon=HORIZON,
    )
    header = (
        f"{'policy':20}"
        + "".join(f"  h={h:<4} thr/att" for h in HOT_FRACTIONS)
    )
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        per_fraction = results[policy.name]
        cells = []
        for fraction in HOT_FRACTIONS:
            outcome = per_fraction[fraction]
            cells.append(
                f"{outcome.throughput:6.3f}/{outcome.attempts_per_message.mean:4.1f}"
            )
        print(f"{policy.name:20}  " + "  ".join(cells))
    print(
        "\nReading: as the hot fraction grows, immediate retry burns attempts"
        "\nre-colliding in the saturated tree; the backoff strategies keep"
        "\nattempts-per-message near 1 at a modest throughput cost — and the"
        "\nqueue-feedback scheme (Scott & Sohi style) adapts the most."
    )


if __name__ == "__main__":
    main()
