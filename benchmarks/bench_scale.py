"""Benchmark: the scale1024 study — N=256..4096, beyond the paper.

Runs the ``scale1024`` registry experiment end-to-end on the numpy
backends (the only way N=4096 is reachable in benchmark time: the
flat points ride :mod:`repro.barrier.kernel_numpy`, the tree points
:mod:`repro.barrier.kernel_tree_numpy`) and records, per N:

- flat adaptive-backoff accesses vs the max(Model 1, Model 2)
  prediction — the ``sim/model`` ratio shows how far the Section 5.1
  asymptotics hold past the paper's range,
- combining-tree (degree 4) and hierarchical (degree 16) accesses —
  where the linear-in-N law breaks once modules scale with N,
- the Omega-network release probe (stages = log2 N).

The record lands in ``reports/scale_sweep.json`` for
``tools/bench_report.py``.  ``REPRO_BENCH_SCALE_N`` trims the N axis
(default ``256,512,1024,2048,4096``) so smoke runs stay cheap.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import write_record
from repro.analysis.experiments import run

N_VALUES = tuple(
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_SCALE_N", "256,512,1024,2048,4096"
    ).split(",")
    if part
)
REPETITIONS = int(os.environ.get("REPRO_BENCH_SCALE_REPS", "20"))


def bench_scale(benchmark):
    timings = []

    def timed_run():
        t0 = time.perf_counter()
        result = run(
            "scale1024",
            n_values=N_VALUES,
            repetitions=REPETITIONS,
            backend="numpy",
        )
        timings.append(time.perf_counter() - t0)
        return result

    result = benchmark.pedantic(timed_run, iterations=1, rounds=1)

    data = result.data
    per_n = {}
    for n in N_VALUES:
        model = data["model"][n]
        flat = data["flat"][n]
        entry = {
            "model_prediction": model,
            "flat": flat,
            "flat_over_model": flat / model if model else None,
        }
        for label, curve in data.items():
            if label.startswith(("tree-", "hier-")):
                entry[label] = curve[n]
        probe = data.get("network", {}).get(n)
        if probe:
            entry["network"] = probe
        per_n[str(n)] = entry

    write_record("scale_sweep", {
        "experiment_id": "scale1024",
        "n_values": list(N_VALUES),
        "repetitions": REPETITIONS,
        "backend": "numpy",
        "cpu_count": os.cpu_count(),
        "wall_time_seconds": timings[-1],
        "per_n": per_n,
    })

    path = os.path.join(
        os.path.dirname(__file__), "reports", "scale1024.txt"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(result) + "\n")
    print()
    print(result)
