"""Benchmark: declarative registry dispatch vs direct point execution.

The registry resolves a parameter schema, decomposes the sweep into
points, JSON-round-trips every payload, and aggregates — per
experiment run.  This benchmark measures that machinery against the
bare minimum (call ``run_point`` per point, aggregate), min-of-k on
the same in-process state, and asserts the overhead stays under 2% of
end-to-end wall time: the refactor's dispatch layer must be free at
experiment granularity.

Writes ``reports/registry_overhead.json`` for ``tools/bench_report.py``.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_REPS, write_record
from repro.registry import get_spec, run

EXPERIMENT_ID = "figure5"
ROUNDS = 5
MAX_OVERHEAD_FRACTION = 0.02


def _min_of(rounds, fn):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_registry_overhead(benchmark):
    spec = get_spec(EXPERIMENT_ID)
    kwargs = dict(repetitions=BENCH_REPS)

    def direct():
        # The floor: exactly the per-point work and the aggregate, no
        # schema resolution, no registry lookup, no payload round-trip.
        params = spec.resolve(kwargs)
        points = spec.points(params)
        payloads = {
            key: spec.run_point(**point_kwargs)
            for key, point_kwargs in points.items()
        }
        return spec.aggregate(payloads, params)

    def registry():
        return run(EXPERIMENT_ID, **kwargs)

    # Warm both paths (trace caches, imports) before timing.
    direct_result = direct()
    registry_result = benchmark.pedantic(registry, iterations=1, rounds=1)
    assert str(direct_result) == str(registry_result)

    direct_seconds = _min_of(ROUNDS, direct)
    registry_seconds = _min_of(ROUNDS, registry)
    overhead_seconds = max(0.0, registry_seconds - direct_seconds)
    overhead_fraction = overhead_seconds / registry_seconds

    write_record("registry_overhead", {
        "experiment_id": EXPERIMENT_ID,
        "repetitions": BENCH_REPS,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "direct_seconds": direct_seconds,
        "registry_seconds": registry_seconds,
        "overhead_seconds": overhead_seconds,
        "overhead_fraction": overhead_fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    })
    print(
        f"\nregistry {registry_seconds:.4f}s vs direct {direct_seconds:.4f}s "
        f"-> overhead {100 * overhead_fraction:.2f}% "
        f"(budget {100 * MAX_OVERHEAD_FRACTION:.0f}%)"
    )
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"registry dispatch overhead {100 * overhead_fraction:.2f}% "
        f"exceeds the {100 * MAX_OVERHEAD_FRACTION:.0f}% budget"
    )
