"""Benchmark: regenerate Figure 3 (arrival distribution within A).

Paper shape: FFT's arrivals are roughly uniform across A; SIMPLE's are
skewed toward the ends of the interval (uneven load balancing).
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_figure3(benchmark):
    result = run_and_report(benchmark, "figure3", scale=BENCH_SCALE)
    for app, fractions in result.data.items():
        assert abs(sum(fractions) - 1.0) < 1e-6, app
    fft = result.data["FFT"]
    # No single bin of FFT's distribution may hold a majority.
    assert max(fft) < 0.75
