"""Ablation benchmark: combining trees vs directory pointer pressure.

Paper claim (Section 1): "as long as the degree of the nodes in the
combining tree is less than the number of pointers in the
cache-directory, then synchronization variables will not result in
extra invalidation traffic."
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_tree_coherence(benchmark):
    result = run_and_report(
        benchmark, "tree_coherence", scale=min(BENCH_SCALE, 0.5)
    )
    flat_sync = result.data["flat"][0]
    below = result.data["tree-3"][0]   # degree < pointers
    above = result.data["tree-8"][0]   # degree > pointers
    assert below < flat_sync / 4
    assert below < above
