"""Benchmark: regenerate Table 1 (invalidations by reference class).

Paper shape: synchronization references cause invalidations far more
often than data references under limited-pointer directories, both
improve from 2 to 3+ pointers, and the full map nearly eliminates the
synchronization column.
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_table1(benchmark):
    result = run_and_report(benchmark, "table1", scale=BENCH_SCALE)
    for app, per_app in result.data.items():
        limited_sync = per_app[2][1]
        full_sync = per_app[64][1]
        assert limited_sync > per_app[2][0], app  # sync >> data at i=2
        assert full_sync < limited_sync / 4, app  # full map collapses it
