"""Benchmark: the batched tree kernel vs the tree event loop.

Runs a paper-scale combining-tree sweep (no backoff and the adaptive
composite, N in {16, 64, 256}, A in {0, 10, 100, 1000}) twice — once
on ``backend=python`` (the reference event loop of
:mod:`repro.barrier.tree`) and once on ``backend=numpy`` (the batched
kernel of :mod:`repro.barrier.kernel_tree_numpy`) — asserts the
episode summaries are bit-identical and that the kernel actually
vectorized its shards, and records both wall times plus the speedup
to ``reports/tree_kernel.json`` for ``tools/bench_report.py``.

The acceptance bar in docs/vectorization.md is a >= 5x aggregate
speedup at the paper's 100 repetitions; at smoke scales the fixed
per-shard overhead eats a chunk of the win, so the speedup is
recorded, not asserted — unless ``REPRO_BENCH_TREE_MIN_SPEEDUP`` is
set, in which case the run fails below that floor (CI's
vectorize-smoke sets 3 on its smoke config).
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_REPS, write_record
from repro.barrier.backend import (
    get_kernel_counters,
    reset_kernel_counters,
)
from repro.barrier.sweep import sweep_tree
from repro.core.backoff import AdaptiveBackoff, NoBackoff

N_VALUES = (16, 64, 256)
A_VALUES = (0, 10, 100, 1000)
DEGREE = 4


def _policies():
    return {
        "none": NoBackoff(),
        "adaptive": AdaptiveBackoff(multiplier=1, flag_base=2),
    }


def _full_sweep(backend):
    results = {}
    for interval_a in A_VALUES:
        sweep = sweep_tree(
            N_VALUES,
            interval_a,
            _policies(),
            degree=DEGREE,
            repetitions=BENCH_REPS,
            seed=0,
            backend=backend,
        )
        for label, aggregates in sweep.items():
            results[(label, interval_a)] = [
                (a.mean_accesses, a.mean_waiting_time, a.mean_waiting_p95)
                for a in aggregates
            ]
    return results


def bench_tree_kernel(benchmark):
    start = time.perf_counter()
    loop = _full_sweep("python")
    python_seconds = time.perf_counter() - start

    timings = []

    def timed_run():
        t0 = time.perf_counter()
        result = _full_sweep("numpy")
        timings.append(time.perf_counter() - t0)
        return result

    reset_kernel_counters()
    kernel = benchmark.pedantic(timed_run, iterations=1, rounds=1)
    numpy_seconds = timings[-1]
    counters = get_kernel_counters()

    assert kernel == loop, (
        "backend=numpy must be bit-identical to backend=python"
    )
    assert counters.vectorized_shards > 0, (
        "the numpy run never vectorized a tree shard; the comparison "
        "timed the event loop twice"
    )

    speedup = python_seconds / numpy_seconds if numpy_seconds else None
    floor = os.environ.get("REPRO_BENCH_TREE_MIN_SPEEDUP")
    if floor is not None:
        assert speedup is not None and speedup >= float(floor), (
            f"tree kernel speedup {speedup:.2f}x is below the "
            f"REPRO_BENCH_TREE_MIN_SPEEDUP={floor} floor"
        )

    write_record("tree_kernel", {
        "sweep": {
            "n_values": list(N_VALUES),
            "a_values": list(A_VALUES),
            "degree": DEGREE,
            "policies": sorted(_policies()),
        },
        "repetitions": BENCH_REPS,
        "cpu_count": os.cpu_count(),
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": speedup,
        "vectorized_shards": counters.vectorized_shards,
        "fallback_shards": counters.fallback_shards,
        "digests_match": True,
    })
