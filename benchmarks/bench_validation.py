"""Benchmark: uniform-arrival model validation (Sections 5 / 7.1).

Paper: the uniform-arrival assumption "is not expected to significantly
change our results"; the traffic cross-check agreed to within 1%
(0.136 vs 0.135).  Our per-barrier check asserts the model stays within
2x for every application and is nearly exact for the most uniform one.
"""

from benchmarks._util import BENCH_REPS, BENCH_SCALE, run_and_report


def bench_validation(benchmark):
    result = run_and_report(
        benchmark, "validation", scale=BENCH_SCALE, repetitions=BENCH_REPS
    )
    for app, error_pct in result.data.items():
        assert error_pct < 100.0, app
    assert min(result.data.values()) < 25.0
