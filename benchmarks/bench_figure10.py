"""Benchmark: regenerate Figure 10 (waiting times, A = 1000).

Paper shape: large backoff bases overshoot the release at large A
(+350% waiting at N=64, base 8) while base 2 stays within ~16%; the
waiting-time curve peaks around N=64 and then declines.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure10(benchmark):
    result = run_and_report(benchmark, "figure10", repetitions=BENCH_REPS)
    base = result.data["Without Backoff"]
    b2 = result.data["Base 2 Backoff on Barrier Flag"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    # Base 8 overshoots badly at N=64 (paper: 576 -> 2048 cycles).
    assert b8[64] > 2.5 * base[64]
    # Base 2 is the favourable tradeoff (paper: +16%).
    assert b2[64] < 1.35 * base[64]
    # The backoff waiting time peaks near N=64 and then declines.
    assert b8[64] > b8[512]
