"""Benchmark: Section 2.1 — snoopy bus vs limited-pointer directory.

Shape: broadcast coherence keeps synchronization's share of bus traffic
modest regardless of sharing width, while the directory pays per-copy
invalidations on the widely shared synchronization words — the paper's
scaling argument.
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_bus_vs_directory(benchmark):
    result = run_and_report(
        benchmark, "bus_vs_directory", scale=min(BENCH_SCALE, 0.5)
    )
    bus_share = result.data["snoopy-invalidate"][0]
    directory_share = result.data["directory-2ptr"][0]
    assert bus_share < directory_share
    # Per-reference traffic is also lower on the broadcast bus.
    assert result.data["snoopy-invalidate"][1] < result.data["directory-2ptr"][1]
