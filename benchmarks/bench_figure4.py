"""Benchmark: regenerate Figure 4 (analytic models vs simulation).

Paper shape: Model 1 matches the A=0 curve; Model 2 matches A=1000 at
every plotted N; max(Model1, Model2) fits everywhere; for N < 32 the
A=0 curve lies below A=100, and the ordering flips for large N.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure4(benchmark):
    result = run_and_report(benchmark, "figure4", repetitions=BENCH_REPS)
    for n, sim in result.data["sim_A0"].items():
        assert abs(sim - result.data["model1"][n]) <= max(0.05 * sim, 2.0)
    for n, sim in result.data["sim_A1000"].items():
        if n <= 128:
            assert abs(sim - result.data["model2_A1000"][n]) <= 0.1 * sim
    assert result.data["sim_A0"][8] < result.data["sim_A100"][8]
    assert result.data["sim_A100"][256] < result.data["sim_A0"][256]
