"""Benchmark: the vectorized numpy episode kernel vs the event loop.

Runs figure4 twice — once on ``backend=python`` (the cycle-exact
reference event loop) and once on ``backend=numpy`` (the batched
episode kernel) — asserts the result digests are bit-identical and
that the kernel actually vectorized its shards (a silent fallback
would time the event loop against itself), and records both wall
times plus the speedup to ``reports/vectorized_kernel.json`` for
``tools/bench_report.py``.

At the paper's repetition count the kernel's closed-form unit-wait
path covers every figure4 point; the acceptance bar in
docs/vectorization.md is a >= 10x speedup at that scale.  At smoke
scales (``REPRO_BENCH_REPS=5``) the fixed per-shard overhead eats a
chunk of the win, so the speedup is recorded, not asserted.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_REPS, write_record
from repro.analysis.experiments import run
from repro.barrier.backend import (
    get_kernel_counters,
    reset_kernel_counters,
)
from repro.obs.manifest import jsonable

EXPERIMENT_ID = "figure4"


def bench_vectorized_kernel(benchmark):
    from repro.exec.cache import payload_digest

    start = time.perf_counter()
    loop = run(EXPERIMENT_ID, repetitions=BENCH_REPS, backend="python")
    python_seconds = time.perf_counter() - start

    timings = []

    def timed_run():
        t0 = time.perf_counter()
        result = run(EXPERIMENT_ID, repetitions=BENCH_REPS, backend="numpy")
        timings.append(time.perf_counter() - t0)
        return result

    reset_kernel_counters()
    kernel = benchmark.pedantic(timed_run, iterations=1, rounds=1)
    numpy_seconds = timings[-1]
    counters = get_kernel_counters()

    python_digest = payload_digest(jsonable(loop.data))
    numpy_digest = payload_digest(jsonable(kernel.data))
    assert python_digest == numpy_digest, (
        "backend=numpy must be bit-identical to backend=python"
    )
    assert counters.vectorized_shards > 0, (
        "the numpy run never vectorized a shard; the comparison timed "
        "the event loop twice"
    )

    write_record("vectorized_kernel", {
        "experiment_id": EXPERIMENT_ID,
        "repetitions": BENCH_REPS,
        "cpu_count": os.cpu_count(),
        "python_seconds": python_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": python_seconds / numpy_seconds if numpy_seconds else None,
        "vectorized_shards": counters.vectorized_shards,
        "fallback_shards": counters.fallback_shards,
        "results_digest": python_digest,
        "digests_match": True,
    })
