"""Ablation benchmark: deterministic vs randomized exponential backoff.

Paper argument (Section 4.2): deterministic backoff preserves the
serialization established by the first contention episode, while
probabilistic retries "destroy the serialization and could result in
contention again".  The ablation must show the deterministic policy
making no more accesses at every point.
"""

from benchmarks._util import run_and_report


def bench_determinism(benchmark):
    result = run_and_report(benchmark, "determinism", repetitions=50)
    for point, outcome in result.data.items():
        det_accesses = outcome["deterministic"][0]
        rnd_accesses = outcome["randomized"][0]
        assert det_accesses <= rnd_accesses * 1.02, point
