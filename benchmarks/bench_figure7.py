"""Benchmark: regenerate Figure 7 (network accesses, A = 1000).

Paper shape: at A = 1000 variable backoff alone does nothing for
small N, while exponential flag backoff removes >95% of accesses.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure7(benchmark):
    result = run_and_report(benchmark, "figure7", repetitions=BENCH_REPS)
    baseline = result.data["Without Backoff"]
    var = result.data["Backoff on Barrier Var."]
    b2 = result.data["Base 2 Backoff on Barrier Flag"]
    # Variable backoff alone is nearly useless for N <= 32 here.
    assert 1 - var[16] / baseline[16] < 0.1
    # Base-2 flag backoff saves >95% at N=16 and N=64.
    assert 1 - b2[16] / baseline[16] > 0.95
    assert 1 - b2[64] / baseline[64] > 0.95
