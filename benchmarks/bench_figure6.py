"""Benchmark: regenerate Figure 6 (network accesses, A = 100).

Paper shape: exponential flag backoff saves >90% at small N and
progressively less as N grows toward A.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure6(benchmark):
    result = run_and_report(benchmark, "figure6", repetitions=BENCH_REPS)
    baseline = result.data["Without Backoff"]
    b4 = result.data["Base 4 Backoff on Barrier Flag"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    # Paper: >90% savings at N=16 with base 4; ~60% at N=64 base 8;
    # only ~30% at N=512 base 8.
    assert 1 - b4[16] / baseline[16] > 0.85
    assert 0.45 < 1 - b8[64] / baseline[64] < 0.9
    assert 1 - b8[512] / baseline[512] < 0.5
