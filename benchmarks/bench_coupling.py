"""Benchmark: Section 3 coupling of barrier traffic into Patel's model.

The paper suggests feeding barrier traffic rates into Patel's
multistage-network model "if network contention results are desired".
The coupled estimate must show backoff raising the network's acceptance
probability monotonically with the traffic removed.
"""

from benchmarks._util import run_and_report


def bench_coupling(benchmark):
    result = run_and_report(benchmark, "coupling", repetitions=50)
    none = result.data["Without Backoff"]["acceptance"]
    b2 = result.data["Base 2 Backoff on Barrier Flag"]["acceptance"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]["acceptance"]
    assert none < b2 < b8
    assert all(r > 0 for r in result.data["relief"].values())
