"""Benchmark: Section 7.1 — FFT average traffic case study.

Paper shape: 0.133 base accesses/cycle/processor; adding uncached
barrier traffic raises the average slightly (0.136); base-8 backoff
recovers most of the increase (0.134); the barrier-model prediction
matches the trace measurement (0.136 vs 0.135).
"""

from benchmarks._util import BENCH_REPS, BENCH_SCALE, run_and_report


def bench_fft_traffic(benchmark):
    result = run_and_report(
        benchmark, "fft_traffic", scale=BENCH_SCALE, repetitions=BENCH_REPS
    )
    base = result.data["base_rate"]
    assert result.data["with_barriers"] > base
    assert base <= result.data["with_base8"] < result.data["with_barriers"]
    # Model vs measured within a factor of two (paper: 0.136 vs 0.135).
    assert result.data["with_barriers"] / result.data["measured"] < 2.0
