"""Benchmark: Section 5.1 — backoff vs hardware-supported barriers.

Paper shape: with favourable (N, A) combinations the base-2 flag
backoff's access counts "compare reasonably" with the bus, directory
and Hoshino schemes; at large N it does much worse than any of them.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_hardware(benchmark):
    result = run_and_report(benchmark, "hardware", repetitions=BENCH_REPS)
    assert result.data["backoff"][4] < 3 * result.data["full-map directory"][4]
    assert result.data["backoff"][128] > 5 * result.data["full-map directory"][128]
