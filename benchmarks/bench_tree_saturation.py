"""Benchmark: hot-spot tree saturation (the paper's motivation).

Pfister-Norton shape: a few percent of hot references collapse the
cold-traffic bandwidth of the whole machine; the Section 8(5) proactive
queue-feedback throttle cannot restore bandwidth (the hot module is the
bottleneck) but sharply reduces the latency everyone suffers.
"""

from benchmarks._util import run_and_report


def bench_tree_saturation(benchmark):
    result = run_and_report(benchmark, "tree_saturation")
    immediate = result.data["immediate"]
    # Bandwidth collapse: >60% of cold throughput gone by 16% hot.
    assert immediate[0.16][0] < immediate[0.0][0] * 0.4
    # Monotone degradation along the sweep.
    fractions = sorted(immediate)
    throughputs = [immediate[f][0] for f in fractions]
    assert all(a >= b * 0.9 for a, b in zip(throughputs, throughputs[1:]))
    # Proactive feedback cuts cold latency under deep saturation.
    proactive = result.data["feedback-proactive"]
    assert proactive[0.16][1] < immediate[0.16][1] * 0.8
