"""Benchmark: spin vs block vs the spin-then-queue hybrid.

Paper shape: blocking wastes its overhead when arrivals are tight and
wins when they are spread; the threshold hybrid tracks the better
scheme at both extremes without knowing A in advance.
"""

from benchmarks._util import run_and_report


def bench_queueing(benchmark):
    result = run_and_report(benchmark, "queueing", repetitions=50)
    spin = result.data["spin-b2"]
    block = result.data["block"]
    hybrid = result.data["hybrid"]
    # Spin wins waiting time at A=0; block wins at A=10000.
    assert spin[0][1] < block[0][1]
    assert block[10_000][1] < spin[10_000][1]
    # Hybrid within 25% of the better scheme at both extremes.
    for a in (0, 10_000):
        best = min(spin[a][1], block[a][1])
        assert hybrid[a][1] <= 1.25 * best
