"""Benchmark: supervised execution vs the bare exec engine, no faults.

Supervision (repro.exec.supervisor) promises to be free until
something actually goes wrong: with no worker deaths, no retries and
no deadline expiries, an armed ``--retries``/``--deadline`` run must
produce bit-identical results within 2% of the unsupervised wall
time.  This benchmark runs the same experiment through the exec
engine with supervision dormant (the default config) and armed
(retries + a generous deadline), min-of-k on the same in-process
state, asserts the results match exactly, and enforces the budget.

Writes ``reports/supervisor_overhead.json`` for
``tools/bench_report.py``.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_REPS, write_record
from repro.exec.context import ExecConfig, execution
from repro.exec.supervisor import SupervisorConfig, supervision
from repro.registry import run

EXPERIMENT_ID = "figure5"
ROUNDS = 5
MAX_OVERHEAD_FRACTION = 0.02

#: Armed but never triggered on a healthy run: the deadline is far
#: beyond any point's wall time and no point ever fails, so this
#: measures pure supervision machinery, not recovery work.
ARMED = SupervisorConfig(retries=2, deadline_seconds=3600.0)


def _min_of(rounds, fn):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_supervisor_overhead(benchmark):
    kwargs = dict(repetitions=BENCH_REPS)

    def plain():
        with execution(ExecConfig(force_engine=True)):
            return run(EXPERIMENT_ID, **kwargs)

    def supervised():
        with supervision(ARMED):
            with execution(ExecConfig(force_engine=True)):
                return run(EXPERIMENT_ID, **kwargs)

    # Warm both paths (imports, memoized code digest) before timing,
    # and pin the no-fault bit-identity claim while we are at it.
    plain_result = plain()
    supervised_result = benchmark.pedantic(
        supervised, iterations=1, rounds=1
    )
    assert str(plain_result) == str(supervised_result)

    plain_seconds = _min_of(ROUNDS, plain)
    supervised_seconds = _min_of(ROUNDS, supervised)
    overhead_seconds = max(0.0, supervised_seconds - plain_seconds)
    overhead_fraction = overhead_seconds / supervised_seconds

    write_record("supervisor_overhead", {
        "experiment_id": EXPERIMENT_ID,
        "repetitions": BENCH_REPS,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "retries": ARMED.retries,
        "deadline_seconds": ARMED.deadline_seconds,
        "plain_seconds": plain_seconds,
        "supervised_seconds": supervised_seconds,
        "overhead_seconds": overhead_seconds,
        "overhead_fraction": overhead_fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    })
    print(
        f"\nsupervised {supervised_seconds:.4f}s vs plain "
        f"{plain_seconds:.4f}s -> overhead "
        f"{100 * overhead_fraction:.2f}% "
        f"(budget {100 * MAX_OVERHEAD_FRACTION:.0f}%)"
    )
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"supervision overhead {100 * overhead_fraction:.2f}% "
        f"exceeds the {100 * MAX_OVERHEAD_FRACTION:.0f}% no-fault budget"
    )
