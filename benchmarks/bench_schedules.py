"""Ablation benchmark: linear vs exponential flag-backoff schedules.

Section 4.2 allows both; the paper's figures evaluate only exponential.
Shape: linear schedules land between no-backoff and the exponential
family's log-of-span floor, and exponential wins by a growing margin as
the arrival interval A stretches.
"""

from benchmarks._util import run_and_report


def bench_schedules(benchmark):
    result = run_and_report(benchmark, "schedules", repetitions=50)
    for a in (1000, 10_000):
        none = result.data["none"][a][0]
        lin1 = result.data["linear c=1"][a][0]
        exp2 = result.data["exp b=2"][a][0]
        assert exp2 < lin1 < none
    # Exponential's margin over linear grows with A.
    margin = lambda a: result.data["linear c=1"][a][0] / result.data["exp b=2"][a][0]
    assert margin(10_000) > margin(100)
