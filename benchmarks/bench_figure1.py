"""Benchmark: regenerate Figure 1 (invalidation histogram, SIMPLE/64).

Paper shape: in over 95% of invalidation events no more than three
caches are invalidated; the rare wide invalidations (up to N-1) come
from the barrier flag writes.
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_figure1(benchmark):
    result = run_and_report(benchmark, "figure1", scale=BENCH_SCALE)
    assert result.data["at_most_3_pct"] > 95.0
    assert max(result.data["fractions"]) > 10  # wide sync invalidations exist
