"""Benchmark: regenerate Figure 9 (waiting times, A = 100).

Paper shape: waiting times track network accesses closely, because
the accesses themselves are what delay the processes.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure9(benchmark):
    result = run_and_report(benchmark, "figure9", repetitions=BENCH_REPS)
    base = result.data["Without Backoff"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    # Waits resemble the access counts (paper: Figures 6 and 9 alike);
    # backoff never helps waiting dramatically at A=100.
    for n in (64, 256):
        assert b8[n] < 2.0 * base[n]
