"""Benchmark: scenario fan-out vs hand-looped registry runs.

``repro.scenario`` parses a matrix file, validates every axis against
the parameter schema, expands the cartesian product into RunPlans, and
routes each cell through ``repro.exec.plan.execute`` with per-cell
digesting — per matrix.  This benchmark measures that machinery
against the bare minimum (a hand-written loop calling the registry
once per cell), min-of-k on the same in-process state, and asserts the
overhead stays under 2% of end-to-end wall time: declaring a matrix in
YAML must cost nothing over writing the loop yourself.

Writes ``reports/scenario_overhead.json`` for ``tools/bench_report.py``.
"""

from __future__ import annotations

import gc
import itertools
import os
import time

from benchmarks._util import BENCH_REPS, write_record
from repro.exec.plan import result_digest
from repro.registry import run
from repro.scenario import expand, parse_scenario, run_scenario

ROUNDS = 10
MAX_OVERHEAD_FRACTION = 0.02

#: Repetitions per cell.  5x the usual bench count: each timed round
#: must be long enough (>100ms) that scheduler jitter on a small CI
#: box stays well under the 2% budget being asserted.
CELL_REPS = 5 * BENCH_REPS

#: The matrix under test: plain cells only, so the hand loop below is
#: an exact floor (fault cells would route through the resilient
#: runner on both paths and dilute the dispatch comparison).
MATRIX = {
    "name": "bench",
    "blocks": [
        {
            "experiment": "determinism",
            "params": {"repetitions": CELL_REPS, "points": [[2, 0], [4, 0]]},
            "axes": {"base": [2, 4], "seed": [0, 1]},
        }
    ],
}


def _timed_rounds(rounds, *fns):
    """Wall time per function per round, rounds interleaved so drift
    (GC, cache, thermal) lands on every path instead of the last one."""
    times = [[] for _ in fns]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            for i, fn in enumerate(fns):
                gc.collect()
                start = time.perf_counter()
                fn()
                times[i].append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return times


def bench_scenario_overhead(benchmark):
    def hand_loop():
        # The floor: the loop a user would write instead of a scenario
        # file — direct registry calls, digest per result.
        digests = {}
        for base, seed in itertools.product([2, 4], [0, 1]):
            result = run(
                "determinism",
                repetitions=CELL_REPS,
                points=((2, 0), (4, 0)),
                base=base,
                seed=seed,
            )
            digests[(base, seed)] = result_digest(result)
        return digests

    def scenario():
        spec = parse_scenario(MATRIX)
        return run_scenario(spec)

    # Warm both paths (trace caches, imports) before timing, and pin
    # the contract the overhead is buying: identical per-cell digests.
    direct_digests = hand_loop()
    scenario_run = benchmark.pedantic(scenario, iterations=1, rounds=1)
    assert scenario_run.ok
    for outcome in scenario_run.outcomes:
        plan = outcome.cell.plan
        key = (plan.params["base"], plan.seed)
        assert outcome.digest == direct_digests[key]

    direct_times, scenario_times = _timed_rounds(ROUNDS, hand_loop, scenario)
    direct_seconds = min(direct_times)
    scenario_seconds = min(scenario_times)
    # The paired per-round gap cancels drift the two independent mins
    # can't: if scenario ever matched its adjacent hand loop, the
    # dispatch machinery costs at most that round's gap.
    overhead_seconds = max(
        0.0, min(s - d for s, d in zip(scenario_times, direct_times))
    )
    overhead_fraction = overhead_seconds / scenario_seconds

    cells = len(expand(parse_scenario(MATRIX)))
    write_record("scenario_overhead", {
        "experiment_id": "determinism",
        "cells": cells,
        "repetitions": CELL_REPS,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "direct_seconds": direct_seconds,
        "scenario_seconds": scenario_seconds,
        "overhead_seconds": overhead_seconds,
        "overhead_fraction": overhead_fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    })
    print(
        f"\nscenario {scenario_seconds:.4f}s vs hand loop "
        f"{direct_seconds:.4f}s over {cells} cells "
        f"-> overhead {100 * overhead_fraction:.2f}% "
        f"(budget {100 * MAX_OVERHEAD_FRACTION:.0f}%)"
    )
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"scenario dispatch overhead {100 * overhead_fraction:.2f}% "
        f"exceeds the {100 * MAX_OVERHEAD_FRACTION:.0f}% budget"
    )
