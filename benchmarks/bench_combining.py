"""Benchmark: combining-tree barriers vs the flat barrier.

Paper shape: once N is large relative to A, the flat barrier's
accesses grow linearly while the combining tree's stay near-constant
(logarithmic work spread over many modules) — the regime where the
paper says distributed software combining is required.
"""

from benchmarks._util import run_and_report


def bench_combining(benchmark):
    result = run_and_report(benchmark, "combining", repetitions=50)
    flat = result.data["flat"]
    tree4 = result.data["tree-4"]
    assert tree4[(256, 100)] < flat[(256, 100)] / 3
    assert tree4[(64, 100)] < flat[(64, 100)]
