"""Benchmark: the serve warm path — dedupe hits against one warm job.

The service's "millions of users" claim rests on the warm path: after
one client has paid for a computation, every identical submission must
be answered from the job store + content-addressed cache at HTTP
round-trip cost, not experiment cost.  This benchmark runs one cold
job, then times ``POST /jobs`` dedupe hits and ``GET /jobs/<id>/result``
fetches over a real socket, and asserts the median warm round trip
stays under a (generous, CI-shared-runner-proof) 1-second budget while
confirming the plan executed exactly once.

Writes ``reports/serve_warm_path.json`` for ``tools/bench_report.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import statistics
import time

from benchmarks._util import write_record
from repro.serve import ServeConfig
from repro.serve.testing import BackgroundServer

ROUNDS = 20
MAX_WARM_SECONDS = 1.0

SUBMISSION = {
    "experiment": "figure5",
    "params": {"n_values": [2, 4], "repetitions": 2},
    "seed": 3,
}


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=json.dumps(body) if body else None)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def bench_serve_warm_path(tmp_path):
    config = ServeConfig(
        port=0,
        jobs=1,
        cache=True,
        cache_dir=str(tmp_path / "cache"),
        work_dir=str(tmp_path / "work"),
    )
    with BackgroundServer(config) as server:
        port = server.port
        # Cold: pay for the computation once.
        cold_start = time.perf_counter()
        _, accepted = _request(port, "POST", "/jobs", SUBMISSION)
        job_id = accepted["job"]["id"]
        while True:
            _, status = _request(port, "GET", f"/jobs/{job_id}")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        cold_seconds = time.perf_counter() - cold_start
        assert status["state"] == "done"

        # Warm: every identical submission is a dedupe hit plus a
        # result fetch — no recomputation.
        warm_times = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _, again = _request(port, "POST", "/jobs", SUBMISSION)
            assert again["deduplicated"] is True
            assert again["job"]["id"] == job_id
            _, result = _request(port, "GET", f"/jobs/{job_id}/result")
            assert result["digest"] == status["digest"]
            warm_times.append(time.perf_counter() - start)

        _, stats = _request(port, "GET", "/stats")
        executed_points = stats["exec"]["points"]

    warm_median = statistics.median(warm_times)
    write_record("serve_warm_path", {
        "experiment_id": SUBMISSION["experiment"],
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "cold_seconds": cold_seconds,
        "warm_median_seconds": warm_median,
        "warm_min_seconds": min(warm_times),
        "executed_points": executed_points,
        "max_warm_seconds": MAX_WARM_SECONDS,
    })
    print(
        f"\nserve warm round trip median {1000 * warm_median:.1f}ms "
        f"(cold {cold_seconds:.3f}s, {executed_points} points executed once)"
    )
    assert executed_points == 2, "the warm path must not recompute"
    assert warm_median < MAX_WARM_SECONDS, (
        f"warm round trip {warm_median:.3f}s exceeds "
        f"{MAX_WARM_SECONDS:.1f}s"
    )
