"""Benchmark: regenerate Figure 8 (waiting times, A = 0).

Paper shape: with simultaneous arrivals the waiting-time curves of
all policies nearly coincide (waits are set by drain contention).
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure8(benchmark):
    result = run_and_report(benchmark, "figure8", repetitions=BENCH_REPS)
    base = result.data["Without Backoff"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    # All four curves are similar at A=0 (within ~30%).
    for n in (16, 64, 256):
        assert abs(b8[n] - base[n]) < 0.3 * base[n]
