"""Benchmark: regenerate Figure 5 (network accesses, A = 0).

Paper shape: the no-backoff curve grows as 5N/2; variable backoff
cuts ~20%; flag backoff makes no further difference at A = 0.
"""

from benchmarks._util import BENCH_REPS, run_and_report


def bench_figure5(benchmark):
    result = run_and_report(benchmark, "figure5", repetitions=BENCH_REPS)
    baseline = result.data["Without Backoff"]
    var = result.data["Backoff on Barrier Var."]
    # ~20% savings from the barrier variable at A=0 for large N.
    assert 0.15 < 1 - var[64] / baseline[64] < 0.25
    # Flag backoff adds little when everyone arrives at once.
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    assert b8[64] > var[64] * 0.9
