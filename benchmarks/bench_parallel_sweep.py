"""Benchmark: parallel sweep execution vs the serial baseline.

Runs the same experiment twice — once on the untouched serial path and
once through :mod:`repro.exec` with ``REPRO_BENCH_JOBS`` workers (at
least 2, so the pool path is always exercised) — asserts the results
are bit-identical, and records both wall times plus the speedup to
``reports/parallel_sweep.json`` for ``tools/bench_report.py``.

On a single-core machine the speedup is expectedly <= 1 (pool overhead
with nothing to overlap); the record includes ``cpu_count`` so readers
can interpret the number honestly.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_JOBS, BENCH_REPS, write_record
from repro.analysis.experiments import run
from repro.exec.context import ExecConfig, execution, get_stats, reset_stats
from repro.obs.manifest import jsonable

EXPERIMENT_ID = "figure4"


def bench_parallel_sweep(benchmark):
    from repro.exec.cache import payload_digest

    jobs = max(2, BENCH_JOBS)

    start = time.perf_counter()
    serial = run(EXPERIMENT_ID, repetitions=BENCH_REPS)
    serial_seconds = time.perf_counter() - start

    timings = []

    def timed_run():
        t0 = time.perf_counter()
        result = run(EXPERIMENT_ID, repetitions=BENCH_REPS)
        timings.append(time.perf_counter() - t0)
        return result

    reset_stats()
    with execution(ExecConfig(jobs=jobs, force_engine=True)):
        parallel = benchmark.pedantic(timed_run, iterations=1, rounds=1)
    parallel_seconds = timings[-1]

    serial_digest = payload_digest(jsonable(serial.data))
    parallel_digest = payload_digest(jsonable(parallel.data))
    assert serial_digest == parallel_digest, (
        "parallel execution must be bit-identical to serial"
    )

    write_record("parallel_sweep", {
        "experiment_id": EXPERIMENT_ID,
        "repetitions": BENCH_REPS,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds
        if parallel_seconds else None,
        "results_digest": serial_digest,
        "digests_match": True,
        "execution": get_stats().as_dict(),
    })
