"""Benchmark: parallel sweep execution vs the serial baseline.

Runs the same experiment twice — once on the untouched serial path and
once through :mod:`repro.exec` with ``REPRO_BENCH_JOBS`` workers (at
least 2, so the pool path is always exercised) — asserts the results
are bit-identical, and records both wall times plus the speedup to
``reports/parallel_sweep.json`` for ``tools/bench_report.py``.

On a machine with fewer cores than workers a wall-time ratio would
only measure pool overhead, so the record then carries
``speedup: null`` plus an explanatory ``speedup_note`` and the
measured ``pool_overhead_seconds`` instead of a misleading <= 1x
"speedup"; ``cpu_count`` is always recorded.
"""

from __future__ import annotations

import os
import time

from benchmarks._util import BENCH_JOBS, BENCH_REPS, write_record
from repro.analysis.experiments import run
from repro.exec.context import ExecConfig, execution, get_stats, reset_stats
from repro.obs.manifest import jsonable

EXPERIMENT_ID = "figure4"


def bench_parallel_sweep(benchmark):
    from repro.exec.cache import payload_digest

    jobs = max(2, BENCH_JOBS)

    start = time.perf_counter()
    serial = run(EXPERIMENT_ID, repetitions=BENCH_REPS)
    serial_seconds = time.perf_counter() - start

    timings = []

    def timed_run():
        t0 = time.perf_counter()
        result = run(EXPERIMENT_ID, repetitions=BENCH_REPS)
        timings.append(time.perf_counter() - t0)
        return result

    reset_stats()
    with execution(ExecConfig(jobs=jobs, force_engine=True)):
        parallel = benchmark.pedantic(timed_run, iterations=1, rounds=1)
    parallel_seconds = timings[-1]

    serial_digest = payload_digest(jsonable(serial.data))
    parallel_digest = payload_digest(jsonable(parallel.data))
    assert serial_digest == parallel_digest, (
        "parallel execution must be bit-identical to serial"
    )

    record = {
        "experiment_id": EXPERIMENT_ID,
        "repetitions": BENCH_REPS,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "results_digest": serial_digest,
        "digests_match": True,
        "execution": get_stats().as_dict(),
    }
    cpu_count = os.cpu_count() or 1
    if cpu_count >= jobs and parallel_seconds:
        record["speedup"] = serial_seconds / parallel_seconds
    else:
        # With fewer cores than workers the pool has nothing to overlap,
        # so a wall-time ratio would read as a parallelism regression
        # when it only measures pool overhead.  Record the overhead
        # explicitly instead of a misleading "speedup".
        record["speedup"] = None
        record["speedup_note"] = (
            f"cpu_count={cpu_count} < jobs={jobs}: workers cannot run "
            "concurrently; recording pool overhead, not parallel speedup"
        )
        record["pool_overhead_seconds"] = parallel_seconds - serial_seconds
    write_record("parallel_sweep", record)
