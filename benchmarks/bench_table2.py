"""Benchmark: regenerate Table 2 (uncached sync traffic share).

Paper shape: FFT's share (1.3-1.9%) is far below SIMPLE's (~22-25%)
and WEATHER's (~55-60%); the share is nearly flat in the pointer count
(sync traffic is constant, only data traffic varies slightly).
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_table2(benchmark):
    result = run_and_report(benchmark, "table2", scale=BENCH_SCALE)
    fft = result.data["FFT"][2]
    simple = result.data["SIMPLE"][2]
    weather = result.data["WEATHER"][2]
    assert fft < simple / 2
    assert fft < weather / 2
    assert weather > simple * 0.9  # WEATHER worst-balanced
