"""Benchmark: regenerate Table 3 (A and E interval statistics).

Paper shape: FFT has a tiny A and an E orders of magnitude larger;
FFT's A grows markedly from 16 to 64 processors (index-F&A
serialization) while SIMPLE's and WEATHER's barely move; at 64
processors SIMPLE and WEATHER have A and E of comparable magnitude.
"""

from benchmarks._util import BENCH_SCALE, run_and_report


def bench_table3(benchmark):
    result = run_and_report(benchmark, "table3", scale=BENCH_SCALE)
    fft16 = result.data["FFT"][16]
    fft64 = result.data["FFT"][64]
    assert fft64[1] > 5 * fft64[0]  # E >> A for FFT
    assert fft64[0] / max(fft16[0], 1) > 2  # A grows with P for FFT
    for app in ("SIMPLE", "WEATHER"):
        a64, e64 = result.data[app][64]
        assert e64 < 10 * a64  # same magnitude at 64 CPUs
