"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact through the
experiment registry, times it with pytest-benchmark (one round — these
are simulations, not microbenchmarks), prints the reproduced
rows/series, and writes them to ``benchmarks/reports/<id>.txt`` so that
EXPERIMENTS.md can cite a stable copy.

Environment knobs:

- ``REPRO_BENCH_REPS``  — repetitions for barrier-model experiments
  (default 100, the paper's count).
- ``REPRO_BENCH_SCALE`` — scale for trace-driven experiments
  (default 1.0, the paper-sized workloads).
"""

from __future__ import annotations

import os

from repro.analysis.experiments import ExperimentResult, run

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "100"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_and_report(benchmark, experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment under the benchmark timer and emit its report."""
    result = benchmark.pedantic(
        run, args=(experiment_id,), kwargs=kwargs, iterations=1, rounds=1
    )
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{result.experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(result) + "\n")
    print()
    print(result)
    return result
