"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact through the
experiment registry, times it with pytest-benchmark (one round — these
are simulations, not microbenchmarks), prints the reproduced
rows/series, and writes them to ``benchmarks/reports/<id>.txt`` so that
EXPERIMENTS.md can cite a stable copy.  Alongside each ``.txt`` a
machine-readable ``<id>.json`` records the wall time and the knobs the
run used; ``tools/bench_report.py`` collects those into
``BENCH_sweeps.json``.

Environment knobs:

- ``REPRO_BENCH_REPS``  — repetitions for barrier-model experiments
  (default 100, the paper's count).
- ``REPRO_BENCH_SCALE`` — scale for trace-driven experiments
  (default 1.0, the paper-sized workloads).
- ``REPRO_BENCH_JOBS``  — worker processes for sweep execution
  (default 1, the serial path; >1 routes sweeps through
  :mod:`repro.exec` with bit-identical output).
- ``REPRO_BENCH_BACKEND`` — episode engine for barrier sweeps
  (``auto`` / ``python`` / ``numpy``; default ``auto``, which uses the
  vectorized numpy kernel when available — see docs/vectorization.md).
  Results are bit-identical across backends; only wall time moves.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from repro.analysis.experiments import ExperimentResult, run
from repro.barrier.backend import backend_context, validate_backend
from repro.exec.context import ExecConfig, execution, get_stats, reset_stats
from repro.obs.manifest import jsonable

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "100"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_BACKEND = validate_backend(
    os.environ.get("REPRO_BENCH_BACKEND", "auto")
)


def write_record(experiment_id: str, record: Dict[str, Any]) -> str:
    """Write one benchmark record to ``reports/<id>.json``; returns path."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{experiment_id}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(jsonable(record), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_and_report(benchmark, experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment under the benchmark timer and emit its report.

    With ``REPRO_BENCH_JOBS > 1`` the run executes under an active
    :class:`repro.exec.ExecConfig`, fanning sweep points across worker
    processes; results are bit-identical to the serial default.
    """
    timings = []

    def timed_run(*args, **kw):
        start = time.perf_counter()
        result = run(*args, **kw)
        timings.append(time.perf_counter() - start)
        return result

    reset_stats()
    with backend_context(BENCH_BACKEND):
        if BENCH_JOBS > 1:
            with execution(ExecConfig(jobs=BENCH_JOBS, force_engine=True)):
                result = benchmark.pedantic(
                    timed_run, args=(experiment_id,), kwargs=kwargs,
                    iterations=1, rounds=1,
                )
        else:
            result = benchmark.pedantic(
                timed_run, args=(experiment_id,), kwargs=kwargs,
                iterations=1, rounds=1,
            )
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{result.experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(result) + "\n")
    record = {
        "experiment_id": result.experiment_id,
        "wall_time_seconds": timings[-1],
        "knobs": dict(sorted(kwargs.items())),
        "jobs": BENCH_JOBS,
        "backend": BENCH_BACKEND,
        "cpu_count": os.cpu_count(),
    }
    stats = get_stats()
    # On the serial path (jobs=1, engine inactive) the exec counters
    # never move; an all-zero "execution" section would misread as "the
    # engine ran and did nothing", so it is only recorded when the
    # engine actually executed points.
    if stats.points:
        record["execution"] = stats.as_dict()
    write_record(result.experiment_id, record)
    print()
    print(result)
    return result
