"""Benchmark: Section 8 — resource waiting with proportional backoff.

Paper shape: waiting time at a resource is directly proportional to
the waiter count, so proportional backoff removes almost all polling
traffic without materially hurting the makespan.
"""

from benchmarks._util import run_and_report


def bench_resource(benchmark):
    result = run_and_report(benchmark, "resource", repetitions=50)
    tas = result.data["test-and-set"]
    backoff = result.data["backoff"]
    for n in (16, 32, 64):
        assert backoff[n][0] < tas[n][0] / 3  # accesses slashed
        assert backoff[n][1] < tas[n][1] * 1.25  # makespan preserved
