"""Benchmark: Section 8 — network-access backoff under hot-spots.

Paper shape: a small hot-spot fraction saturates the switch tree; the
five proposed backoff strategies all cut the per-message attempt count
relative to immediate retry once the hot-spot is active.
"""

from benchmarks._util import run_and_report


def bench_netbackoff(benchmark):
    result = run_and_report(benchmark, "netbackoff")
    eager = result.data["immediate"]
    # Hot traffic collapses throughput for the eager policy.
    assert eager[0.2][0] < eager[0.0][0]
    # At a mild hot-spot every strategy cuts the attempt count.
    for name, per in result.data.items():
        if name == "immediate":
            continue
        assert per[0.05][1] < eager[0.05][1], name
    # Under deep saturation the history/feedback-driven strategies keep
    # winning; the paper's "two opposing arguments" (depth vs inverse
    # depth) are left to the simulation, and inverse-depth indeed loses
    # its edge there.
    for name in ("exponential", "depth-proportional", "queue-feedback"):
        assert result.data[name][0.2][1] < eager[0.2][1], name
