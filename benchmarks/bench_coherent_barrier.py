"""Benchmark: Section 5.1 hardware barrier costs, by simulation.

The paper's idealized counts — invalidating bus ~3, updating bus ~2,
full-map directory ~4 accesses/processor — are here produced by running
actual barrier episodes through the protocol simulators. Shape:
update < invalidating bus < directory << uncached spinning, and the
paper's software proposal (uncached + base-2 backoff) lands in the
hardware schemes' neighbourhood with no hardware at all.
"""

from benchmarks._util import run_and_report


def bench_coherent_barrier(benchmark):
    result = run_and_report(benchmark, "coherent_barrier", repetitions=20)
    data = result.data
    assert data["snoopy-update"] < data["snoopy-invalidate"]
    assert data["snoopy-invalidate-fiw"] < data["snoopy-invalidate"]
    assert data["snoopy-invalidate"] < data["directory"]
    assert data["directory"] < data["uncached"] / 5
    # The paper's proposal: backoff brings uncached spinning within a
    # small factor of the hardware schemes.
    assert data["uncached-b2"] < data["uncached"] / 5
    assert data["uncached-b2"] < 4 * data["directory"]
