"""Benchmark: end-to-end application model (rounds of work + barriers).

Beyond the paper's per-barrier metrics: with the arrival spread
*emerging* from work jitter and prior-round overshoot, variable backoff
is free end-to-end, binary backoff trades modest slowdown for a ~40x
traffic cut, and aggressive bases compound their overshoot round after
round (the paper's idle-time warning, amplified).
"""

from benchmarks._util import run_and_report


def bench_application(benchmark):
    result = run_and_report(benchmark, "application", repetitions=20)
    none = result.data["Without Backoff"]
    var = result.data["Backoff on Barrier Var."]
    b2 = result.data["Base 2 Backoff on Barrier Flag"]
    b8 = result.data["Base 8 Backoff on Barrier Flag"]
    # Variable backoff never slows the application down.
    assert var["completion"] <= none["completion"] * 1.01
    assert var["accesses"] < none["accesses"]
    # Binary backoff slashes traffic at bounded slowdown.
    assert b2["traffic_rate"] < none["traffic_rate"] / 10
    assert b2["completion"] < none["completion"] * 2.0
    # Aggressive bases compound their overshoot.
    assert b8["completion"] > b2["completion"]
